//! # sapsim-scheduler — VM placement and rebalancing
//!
//! Reproduces the scheduling architecture of the paper (Section 2.2,
//! Figures 2–3): a two-layer system in which
//!
//! 1. an **OpenStack-Nova-style scheduler** places VMs onto *compute hosts*
//!    (vSphere clusters / building blocks) through a filter-and-weigher
//!    pipeline with greedy retries, and
//! 2. a **VMware-DRS-style rebalancer** migrates VMs between the nodes of a
//!    cluster when their load diverges.
//!
//! The crate also provides the classic bin-packing baselines the paper
//! cites (First-Fit, Best-Fit, Worst-Fit and their Decreasing variants,
//! Section 3.2), and the *extensions* its discussion section calls for
//! (Section 7): contention-aware weighing, lifetime-aware weighing, and a
//! holistic node-level scheduler that collapses the two layers into one.
//!
//! All scheduling operates on [`HostView`] snapshots — plain data
//! describing each candidate's capacity, allocation, and hints — so the
//! pipeline is a pure function and trivially testable, mirroring how Nova's
//! scheduler works against the placement API's inventory records rather
//! than live hypervisors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod index;
mod packing;
mod pipeline;
mod policies;
mod rebalance;
mod request;
mod weigher;

pub use filter::{
    default_filters, AvailabilityZoneFilter, ComputeFilter, ComputeStatusFilter, DiskFilter,
    Filter, PurposeFilter, RamFilter,
};
pub use index::{Bucket, CandidateIndex};
pub use packing::{pack_all, BinPacker, OfflineStrategyError, PackingOutcome, PackingStrategy};
pub use pipeline::{FilterScheduler, IndexStats, PipelineStats, RankOptions, Ranking, ScheduleError};
pub use policies::{PlacementPolicy, PolicyKind};
pub use rebalance::{
    CrossBbRebalancer, DrsConfig, DrsRebalancer, HostLoad, Migration, NodeLoad, RebalanceReport,
    Rebalancer, VmLoad,
};
pub use request::{HostView, PlacementRequest, RejectReason};
pub use weigher::{
    ContentionWeigher, CpuWeigher, DiskWeigher, LifetimeAffinityWeigher, RamWeigher, Weigher,
};
