//! Filters: eliminate candidates that cannot host the request.
//!
//! Mirrors Nova's filter stage (paper Figure 3): "the scheduler requests
//! the list of all hypervisors, then applies a set of filters to eliminate
//! hypervisors that do not meet the requirements of the requested VM."

use crate::request::{HostView, PlacementRequest, RejectReason};

/// A placement filter. Filters are pure predicates over a candidate view.
pub trait Filter: Send + Sync {
    /// Short name for logs and stats (e.g. `"ComputeFilter"`).
    fn name(&self) -> &'static str;

    /// `Ok(())` to keep the candidate, `Err(reason)` to eliminate it.
    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason>;
}

/// Rejects disabled / in-maintenance candidates (Nova's `ComputeFilter`
/// host-status behaviour).
#[derive(Debug, Default, Clone, Copy)]
pub struct ComputeStatusFilter;

impl Filter for ComputeStatusFilter {
    fn name(&self) -> &'static str {
        "ComputeStatusFilter"
    }

    fn check(&self, _request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        if host.enabled {
            Ok(())
        } else {
            Err(RejectReason::HostDisabled)
        }
    }
}

/// Ensures the VM is assigned to the requested availability zone
/// (Nova's `AvailabilityZoneFilter`). Requests without an AZ constraint
/// pass everywhere.
#[derive(Debug, Default, Clone, Copy)]
pub struct AvailabilityZoneFilter;

impl Filter for AvailabilityZoneFilter {
    fn name(&self) -> &'static str {
        "AvailabilityZoneFilter"
    }

    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        match request.az {
            None => Ok(()),
            Some(az) if az == host.az => Ok(()),
            Some(_) => Err(RejectReason::WrongAz),
        }
    }
}

/// Enforces special-purpose building-block isolation (paper Section 3.1:
/// HANA/GPU blocks "do not accommodate other VMs" and vice versa). The
/// production equivalent is Nova's aggregate/tenant filtering.
#[derive(Debug, Default, Clone, Copy)]
pub struct PurposeFilter;

impl Filter for PurposeFilter {
    fn name(&self) -> &'static str {
        "PurposeFilter"
    }

    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        if host.purpose.accepts(request.purpose) {
            Ok(())
        } else {
            Err(RejectReason::WrongPurpose)
        }
    }
}

/// Removes candidates with insufficient free vCPU capacity (the CPU half
/// of Nova's `ComputeFilter` / `CoreFilter`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ComputeFilter;

impl Filter for ComputeFilter {
    fn name(&self) -> &'static str {
        "ComputeFilter"
    }

    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        if host.free().cpu_cores >= request.resources.cpu_cores {
            Ok(())
        } else {
            Err(RejectReason::InsufficientCpu)
        }
    }
}

/// Removes candidates with insufficient free memory (Nova's `RamFilter`).
#[derive(Debug, Default, Clone, Copy)]
pub struct RamFilter;

impl Filter for RamFilter {
    fn name(&self) -> &'static str {
        "RamFilter"
    }

    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        if host.free().memory_mib >= request.resources.memory_mib {
            Ok(())
        } else {
            Err(RejectReason::InsufficientMemory)
        }
    }
}

/// Removes candidates with insufficient free disk (Nova's `DiskFilter`).
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskFilter;

impl Filter for DiskFilter {
    fn name(&self) -> &'static str {
        "DiskFilter"
    }

    fn check(&self, request: &PlacementRequest, host: &HostView) -> Result<(), RejectReason> {
        if host.free().disk_gib >= request.resources.disk_gib {
            Ok(())
        } else {
            Err(RejectReason::InsufficientDisk)
        }
    }
}

/// The default filter chain, in Nova's evaluation order: cheap status and
/// constraint checks first, capacity checks last.
pub fn default_filters() -> Vec<Box<dyn Filter>> {
    vec![
        Box::new(ComputeStatusFilter),
        Box::new(AvailabilityZoneFilter),
        Box::new(PurposeFilter),
        Box::new(ComputeFilter),
        Box::new(RamFilter),
        Box::new(DiskFilter),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_support::host;
    use sapsim_topology::{AzId, BbPurpose, Resources};

    fn req(cpu: u32, mem_mib: u64, disk: u64) -> PlacementRequest {
        PlacementRequest::new(
            1,
            Resources::new(cpu, mem_mib, disk),
            BbPurpose::GeneralPurpose,
        )
    }

    #[test]
    fn status_filter() {
        let mut h = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        assert!(ComputeStatusFilter.check(&req(1, 1, 1), &h).is_ok());
        h.enabled = false;
        assert_eq!(
            ComputeStatusFilter.check(&req(1, 1, 1), &h),
            Err(RejectReason::HostDisabled)
        );
    }

    #[test]
    fn az_filter_without_constraint_passes_all() {
        let h = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        assert!(AvailabilityZoneFilter.check(&req(1, 1, 1), &h).is_ok());
    }

    #[test]
    fn az_filter_with_constraint() {
        let h = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        let ok = req(1, 1, 1).in_az(AzId::from_raw(0));
        let bad = req(1, 1, 1).in_az(AzId::from_raw(9));
        assert!(AvailabilityZoneFilter.check(&ok, &h).is_ok());
        assert_eq!(
            AvailabilityZoneFilter.check(&bad, &h),
            Err(RejectReason::WrongAz)
        );
    }

    #[test]
    fn purpose_filter_isolates_special_blocks() {
        let mut h = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        h.purpose = BbPurpose::Hana;
        let gp = req(1, 1, 1);
        assert_eq!(
            PurposeFilter.check(&gp, &h),
            Err(RejectReason::WrongPurpose)
        );
        let hana = PlacementRequest::new(1, Resources::new(1, 1, 1), BbPurpose::Hana);
        assert!(PurposeFilter.check(&hana, &h).is_ok());
        // And the reverse: HANA VMs don't land on the general pool.
        let gp_host = host(1, Resources::new(10, 10, 10), Resources::ZERO);
        assert_eq!(
            PurposeFilter.check(&hana, &gp_host),
            Err(RejectReason::WrongPurpose)
        );
    }

    #[test]
    fn capacity_filters_check_free_not_total() {
        let h = host(0, Resources::new(10, 1000, 100), Resources::new(8, 900, 95));
        assert!(ComputeFilter.check(&req(2, 1, 1), &h).is_ok());
        assert_eq!(
            ComputeFilter.check(&req(3, 1, 1), &h),
            Err(RejectReason::InsufficientCpu)
        );
        assert!(RamFilter.check(&req(1, 100, 1), &h).is_ok());
        assert_eq!(
            RamFilter.check(&req(1, 101, 1), &h),
            Err(RejectReason::InsufficientMemory)
        );
        assert!(DiskFilter.check(&req(1, 1, 5), &h).is_ok());
        assert_eq!(
            DiskFilter.check(&req(1, 1, 6), &h),
            Err(RejectReason::InsufficientDisk)
        );
    }

    #[test]
    fn exact_fit_passes() {
        let h = host(0, Resources::new(4, 4096, 50), Resources::ZERO);
        assert!(ComputeFilter.check(&req(4, 4096, 50), &h).is_ok());
        assert!(RamFilter.check(&req(4, 4096, 50), &h).is_ok());
        assert!(DiskFilter.check(&req(4, 4096, 50), &h).is_ok());
    }

    #[test]
    fn default_chain_order_starts_cheap() {
        let names: Vec<_> = default_filters().iter().map(|f| f.name()).collect();
        assert_eq!(names[0], "ComputeStatusFilter");
        assert!(names.contains(&"RamFilter"));
        assert_eq!(names.len(), 6);
    }
}
