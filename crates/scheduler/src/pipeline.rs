//! The filter-and-weigher pipeline: Nova's scheduler core.

use crate::filter::Filter;
use crate::request::{HostView, PlacementRequest, RejectReason};
use crate::weigher::Weigher;
use std::collections::HashMap;
use std::fmt;

/// Scheduling failure: no candidate survived filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// How many candidates each reason eliminated.
    pub rejections: Vec<(RejectReason, usize)>,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no valid host found (")?;
        for (i, (reason, count)) in self.rejections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{count}× {reason}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ScheduleError {}

/// Running counters of pipeline activity, for the scheduling-efficiency
/// analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Placement decisions requested.
    pub requests: u64,
    /// Requests for which at least one candidate survived.
    pub scheduled: u64,
    /// Requests that failed outright.
    pub failed: u64,
    /// Candidates eliminated, by reason.
    pub rejections: HashMap<RejectReason, u64>,
}

/// An OpenStack-Nova-style scheduler: a filter chain followed by a set of
/// multiplier-weighted weighers (paper Figure 3).
///
/// [`FilterScheduler::rank`] returns *all* surviving candidates in
/// preference order rather than just the winner, because Nova "implements a
/// greedy approach with retries reapplying filters and weighers, which
/// yields multiple suitable candidates" (paper Section 2.2) — the caller
/// walks the list until a claim succeeds.
pub struct FilterScheduler {
    filters: Vec<Box<dyn Filter>>,
    weighers: Vec<(f64, Box<dyn Weigher>)>,
    stats: PipelineStats,
}

impl fmt::Debug for FilterScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterScheduler")
            .field(
                "filters",
                &self.filters.iter().map(|x| x.name()).collect::<Vec<_>>(),
            )
            .field(
                "weighers",
                &self
                    .weighers
                    .iter()
                    .map(|(m, w)| (*m, w.name()))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl FilterScheduler {
    /// A scheduler with explicit filter and weigher chains. Each weigher
    /// carries a multiplier; negative multipliers turn a spreading weigher
    /// into a packing one.
    pub fn new(filters: Vec<Box<dyn Filter>>, weighers: Vec<(f64, Box<dyn Weigher>)>) -> Self {
        FilterScheduler {
            filters,
            weighers,
            stats: PipelineStats::default(),
        }
    }

    /// Pipeline activity counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Run the pipeline: filter `hosts`, then rank the survivors
    /// best-first. Returns indices into `hosts`.
    ///
    /// Ranking follows Nova's weigher semantics: each weigher's raw scores
    /// are min-max normalized to `[0, 1]` across the surviving candidates,
    /// multiplied by the weigher's multiplier, and summed. Ties break by
    /// candidate index, which keeps the pipeline fully deterministic.
    pub fn rank(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<Vec<usize>, ScheduleError> {
        self.stats.requests += 1;

        // Filter stage.
        let mut survivors: Vec<usize> = Vec::with_capacity(hosts.len());
        let mut rejections: HashMap<RejectReason, usize> = HashMap::new();
        'candidates: for (i, host) in hosts.iter().enumerate() {
            for f in &self.filters {
                if let Err(reason) = f.check(request, host) {
                    *rejections.entry(reason).or_insert(0) += 1;
                    *self.stats.rejections.entry(reason).or_insert(0) += 1;
                    continue 'candidates;
                }
            }
            survivors.push(i);
        }

        if survivors.is_empty() {
            self.stats.failed += 1;
            let mut rej: Vec<_> = rejections.into_iter().collect();
            rej.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0))));
            return Err(ScheduleError { rejections: rej });
        }

        // Weighing stage: min-max normalize each weigher across survivors.
        let mut totals = vec![0.0f64; survivors.len()];
        for (multiplier, weigher) in &self.weighers {
            let raw: Vec<f64> = survivors
                .iter()
                .map(|&i| weigher.weigh(request, &hosts[i]))
                .collect();
            let lo = raw.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let span = hi - lo;
            for (t, r) in totals.iter_mut().zip(&raw) {
                let norm = if span > 0.0 { (r - lo) / span } else { 0.0 };
                *t += multiplier * norm;
            }
        }

        let mut order: Vec<usize> = (0..survivors.len()).collect();
        order.sort_by(|&a, &b| {
            totals[b]
                .partial_cmp(&totals[a])
                .expect("weights are finite")
                .then_with(|| survivors[a].cmp(&survivors[b]))
        });
        self.stats.scheduled += 1;
        Ok(order.into_iter().map(|k| survivors[k]).collect())
    }

    /// Convenience: the single best candidate.
    pub fn select(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<usize, ScheduleError> {
        Ok(self.rank(request, hosts)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{default_filters, ComputeStatusFilter};
    use crate::request::test_support::host;
    use crate::weigher::{CpuWeigher, RamWeigher};
    use sapsim_topology::{BbPurpose, Resources};

    fn req(cpu: u32, mem: u64) -> PlacementRequest {
        PlacementRequest::new(1, Resources::new(cpu, mem, 1), BbPurpose::GeneralPurpose)
    }

    fn spread_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![
                (1.0, Box::new(CpuWeigher) as Box<dyn Weigher>),
                (1.0, Box::new(RamWeigher)),
            ],
        )
    }

    fn pack_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![(-1.0, Box::new(RamWeigher) as Box<dyn Weigher>)],
        )
    }

    #[test]
    fn spreading_prefers_the_emptiest_host() {
        let hosts = vec![
            host(0, Resources::new(100, 1000, 100), Resources::new(80, 800, 0)),
            host(1, Resources::new(100, 1000, 100), Resources::new(10, 100, 0)),
            host(2, Resources::new(100, 1000, 100), Resources::new(50, 500, 0)),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked, vec![1, 2, 0]);
    }

    #[test]
    fn negative_multiplier_bin_packs() {
        // The fullest host that still fits wins — the HANA strategy.
        let hosts = vec![
            host(0, Resources::new(100, 1000, 100), Resources::new(80, 800, 0)),
            host(1, Resources::new(100, 1000, 100), Resources::new(10, 100, 0)),
            host(2, Resources::new(100, 1000, 100), Resources::new(50, 500, 0)),
        ];
        let mut s = pack_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked, vec![0, 2, 1]);
    }

    #[test]
    fn filtered_hosts_never_appear_in_the_ranking() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO), // too small
            host(2, Resources::new(100, 1000, 100), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(4, 100), &hosts).unwrap();
        assert_eq!(ranked, vec![2]);
    }

    #[test]
    fn no_valid_host_reports_reasons() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![disabled, host(1, Resources::new(1, 10, 1), Resources::ZERO)];
        let mut s = spread_scheduler();
        let err = s.rank(&req(4, 100), &hosts).unwrap_err();
        let total: usize = err.rejections.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2);
        assert!(err.to_string().contains("no valid host"));
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn empty_candidate_list_fails_cleanly() {
        let mut s = spread_scheduler();
        let err = s.rank(&req(1, 1), &[]).unwrap_err();
        assert!(err.rejections.is_empty());
    }

    #[test]
    fn equal_hosts_tie_break_by_index() {
        let hosts = vec![
            host(0, Resources::new(10, 100, 10), Resources::ZERO),
            host(1, Resources::new(10, 100, 10), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        assert_eq!(s.rank(&req(1, 1), &hosts).unwrap(), vec![0, 1]);
    }

    #[test]
    fn single_weigher_normalization_is_scale_invariant() {
        // Doubling all free capacities must not change the ranking.
        let mk = |scale: u32| {
            vec![
                host(0, Resources::new(100 * scale, 1000, 100), Resources::new(30 * scale, 0, 0)),
                host(1, Resources::new(100 * scale, 1000, 100), Resources::new(70 * scale, 0, 0)),
                host(2, Resources::new(100 * scale, 1000, 100), Resources::new(50 * scale, 0, 0)),
            ]
        };
        let mut s1 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let mut s2 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let r1 = s1.rank(&req(1, 1), &mk(1)).unwrap();
        let r2 = s2.rank(&req(1, 1), &mk(2)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn stats_accumulate() {
        let hosts = vec![host(0, Resources::new(10, 100, 10), Resources::ZERO)];
        let mut s = spread_scheduler();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(100, 1), &hosts).unwrap_err();
        assert_eq!(s.stats().requests, 3);
        assert_eq!(s.stats().scheduled, 2);
        assert_eq!(s.stats().failed, 1);
        assert_eq!(
            s.stats().rejections.get(&RejectReason::InsufficientCpu),
            Some(&1)
        );
    }

    #[test]
    fn status_only_pipeline_keeps_order_with_no_weighers() {
        let hosts = vec![
            host(0, Resources::new(1, 1, 1), Resources::ZERO),
            host(1, Resources::new(1, 1, 1), Resources::ZERO),
        ];
        let mut s = FilterScheduler::new(vec![Box::new(ComputeStatusFilter)], vec![]);
        assert_eq!(s.rank(&req(0, 0), &hosts).unwrap(), vec![0, 1]);
    }
}
