//! The filter-and-weigher pipeline: Nova's scheduler core.

use crate::filter::Filter;
use crate::index::CandidateIndex;
use crate::request::{HostView, PlacementRequest, RejectReason};
use crate::weigher::Weigher;
use std::collections::BTreeMap;
use std::fmt;

/// Scheduling failure: no candidate survived filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// How many candidates each reason eliminated, sorted by count
    /// descending, then by reason — a stable order, independent of hash
    /// state.
    pub rejections: Vec<(RejectReason, u32)>,
    /// Size of the candidate set examined (all of which were eliminated).
    pub candidates: u32,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no valid host found (")?;
        for (i, (reason, count)) in self.rejections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{count}× {reason}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ScheduleError {}

/// Running counters of pipeline activity, for the scheduling-efficiency
/// analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Placement decisions requested.
    pub requests: u64,
    /// Requests for which at least one candidate survived.
    pub scheduled: u64,
    /// Requests that failed outright.
    pub failed: u64,
    /// Candidates eliminated, by reason. A `BTreeMap` so iteration (and
    /// therefore every stats dump) has one deterministic order.
    pub rejections: BTreeMap<RejectReason, u64>,
}

/// Cumulative effectiveness counters of [`CandidateIndex`] bucket pruning,
/// kept separate from [`PipelineStats`] on purpose: pruning is a pure
/// execution detail (the indexed and full-scan paths are bit-identical by
/// contract, including their `PipelineStats`), so its bookkeeping must
/// never appear in the stats the equivalence suites compare. These
/// counters feed the engine-health metrics export only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Rank passes that walked a candidate index.
    pub indexed_requests: u64,
    /// Rank passes that scanned the full host slice (no index supplied).
    pub full_scans: u64,
    /// Buckets examined across all indexed passes.
    pub buckets_examined: u64,
    /// Buckets pruned wholesale (infeasible purpose or AZ).
    pub buckets_pruned: u64,
    /// Hosts skipped without running the filter chain, via pruned buckets.
    pub hosts_pruned: u64,
}

/// Execution options for one [`FilterScheduler::rank_into`] pass.
#[derive(Debug, Clone, Copy)]
pub struct RankOptions<'a> {
    /// Purpose×AZ candidate index over the host slice, letting the filter
    /// stage skip whole infeasible buckets. `None` scans every host.
    /// Pruned hosts are still counted under the exact [`RejectReason`]
    /// the filter chain would have emitted, so rejection attribution is
    /// identical either way — but only for the standard filter chain
    /// (status, AZ, purpose, then capacity), which is what every built-in
    /// policy runs.
    pub index: Option<&'a CandidateIndex>,
    /// Sort only the best `top_k` entries of the result (partial
    /// selection); the tail of [`Ranking::order`] beyond
    /// [`Ranking::sorted_len`] is then unsorted. `usize::MAX` (or `0`, or
    /// anything ≥ the survivor count) requests the classic full stable
    /// sort.
    pub top_k: usize,
    /// Update [`PipelineStats`] and record this pass's rejections as new
    /// events. Pass `false` when re-ranking the same request against an
    /// unchanged world (to extend a top-k head), so nothing is counted
    /// twice.
    pub count_stats: bool,
}

impl RankOptions<'static> {
    /// The classic behaviour: full scan, full sort, stats counted.
    pub fn exhaustive() -> Self {
        RankOptions {
            index: None,
            top_k: usize::MAX,
            count_stats: true,
        }
    }
}

/// The structured result of one successful pipeline pass: the ranked
/// survivors plus everything the filter and weigher stages learned on the
/// way — enough to audit the decision without a second pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ranking {
    /// Surviving candidates as indices into the `hosts` slice passed to
    /// [`FilterScheduler::rank`], best first. Only the first
    /// [`sorted_len`](Ranking::sorted_len) entries are ordered; the rest
    /// (present only after a top-k pass) are the remaining survivors in
    /// unspecified order.
    pub order: Vec<usize>,
    /// Combined (multiplier-weighted, normalized) score of each entry in
    /// `order`, aligned index-for-index.
    pub scores: Vec<f64>,
    /// Per-weigher score contributions: for each configured weigher, its
    /// name and the contribution it added to each entry of `order`
    /// (aligned index-for-index). Summing column-wise reproduces
    /// `scores`.
    pub weigher_scores: Vec<(&'static str, Vec<f64>)>,
    /// How many candidates each filter reason eliminated, in reason
    /// order. Empty when every candidate survived.
    pub rejections: Vec<(RejectReason, u32)>,
    /// Size of the candidate set examined (survivors + eliminated).
    pub candidates: u32,
    /// How many leading entries of `order` are guaranteed best-first.
    /// Equal to `order.len()` after a full sort.
    pub sorted_len: usize,
}

impl Ranking {
    /// The winning candidate (index into the original `hosts` slice).
    ///
    /// # Panics
    /// Never: a `Ranking` is only constructed with at least one survivor.
    pub fn best(&self) -> usize {
        self.order[0]
    }

    /// The best `k` candidates with their combined scores, best first.
    pub fn top_k(&self, k: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.order
            .iter()
            .zip(&self.scores)
            .take(k)
            .map(|(&host, &score)| (host, score))
    }
}

/// Reused buffers for the rank hot path, mirroring `DriverScratch` in the
/// driver: after the first call, a steady-state rank allocates nothing.
#[derive(Debug, Default)]
struct RankScratch {
    survivors: Vec<usize>,
    totals: Vec<f64>,
    perm: Vec<usize>,
    /// Recycled per-weigher contribution vectors: popped when a weigher
    /// needs one, pushed back when the previous output is cleared.
    contrib_pool: Vec<Vec<f64>>,
}

/// An OpenStack-Nova-style scheduler: a filter chain followed by a set of
/// multiplier-weighted weighers (paper Figure 3).
///
/// [`FilterScheduler::rank`] returns *all* surviving candidates in
/// preference order rather than just the winner, because Nova "implements a
/// greedy approach with retries reapplying filters and weighers, which
/// yields multiple suitable candidates" (paper Section 2.2) — the caller
/// walks the list until a claim succeeds.
pub struct FilterScheduler {
    filters: Vec<Box<dyn Filter>>,
    weighers: Vec<(f64, Box<dyn Weigher>)>,
    stats: PipelineStats,
    index_stats: IndexStats,
    scratch: RankScratch,
}

impl fmt::Debug for FilterScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterScheduler")
            .field(
                "filters",
                &self.filters.iter().map(|x| x.name()).collect::<Vec<_>>(),
            )
            .field(
                "weighers",
                &self
                    .weighers
                    .iter()
                    .map(|(m, w)| (*m, w.name()))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl FilterScheduler {
    /// A scheduler with explicit filter and weigher chains. Each weigher
    /// carries a multiplier; negative multipliers turn a spreading weigher
    /// into a packing one.
    pub fn new(filters: Vec<Box<dyn Filter>>, weighers: Vec<(f64, Box<dyn Weigher>)>) -> Self {
        FilterScheduler {
            filters,
            weighers,
            stats: PipelineStats::default(),
            index_stats: IndexStats::default(),
            scratch: RankScratch::default(),
        }
    }

    /// Pipeline activity counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Candidate-index prune-effectiveness counters (see [`IndexStats`]).
    pub fn index_stats(&self) -> &IndexStats {
        &self.index_stats
    }

    /// Run the pipeline: filter `hosts`, then rank the survivors
    /// best-first. The returned [`Ranking`] carries the order, the
    /// combined and per-weigher scores, and the per-filter elimination
    /// counts of this pass.
    ///
    /// Ranking follows Nova's weigher semantics: each weigher's raw scores
    /// are min-max normalized to `[0, 1]` across the surviving candidates,
    /// multiplied by the weigher's multiplier, and summed. Ties break by
    /// candidate index, which keeps the pipeline fully deterministic.
    pub fn rank(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<Ranking, ScheduleError> {
        let mut out = Ranking::default();
        self.rank_into(request, hosts, RankOptions::exhaustive(), &mut out)?;
        Ok(out)
    }

    /// The hot-path form of [`rank`](FilterScheduler::rank): writes into a
    /// caller-owned [`Ranking`] (whose buffers are recycled), optionally
    /// prunes whole infeasible buckets through a [`CandidateIndex`], and
    /// optionally sorts only the top-k head. With
    /// [`RankOptions::exhaustive`] the written `Ranking` is identical to
    /// what `rank` returns — the index and top-k variants preserve the
    /// survivor set, scores, rejection counts, and the sorted head
    /// bit-for-bit (the weigher comparator is a strict total order for
    /// finite scores, so partial selection agrees with the stable full
    /// sort; a custom weigher emitting NaN must not use `top_k`).
    pub fn rank_into(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
        opts: RankOptions<'_>,
        out: &mut Ranking,
    ) -> Result<(), ScheduleError> {
        if opts.count_stats {
            self.stats.requests += 1;
        }

        // Recycle the previous output: contribution vectors go back to
        // the pool so steady-state ranking allocates nothing.
        out.order.clear();
        out.scores.clear();
        out.rejections.clear();
        for (_, mut contrib) in out.weigher_scores.drain(..) {
            contrib.clear();
            self.scratch.contrib_pool.push(contrib);
        }
        out.candidates = hosts.len() as u32;
        out.sorted_len = 0;

        // Filter stage. Counting into a fixed array indexed by the reason
        // discriminant reproduces the BTreeMap's declaration-order
        // iteration without the allocation.
        let mut reject_counts = [0u32; RejectReason::ALL.len()];
        self.scratch.survivors.clear();
        match opts.index {
            None => {
                if opts.count_stats {
                    self.index_stats.full_scans += 1;
                }
                'candidates: for (i, host) in hosts.iter().enumerate() {
                    for f in &self.filters {
                        if let Err(reason) = f.check(request, host) {
                            reject_counts[reason as usize] += 1;
                            continue 'candidates;
                        }
                    }
                    self.scratch.survivors.push(i);
                }
            }
            Some(index) => {
                debug_assert_eq!(
                    index.len(),
                    hosts.len(),
                    "candidate index must cover the host slice"
                );
                if opts.count_stats {
                    self.index_stats.indexed_requests += 1;
                }
                let mut feasible_buckets = 0usize;
                for bucket in index.buckets() {
                    if bucket.purpose.accepts(request.purpose)
                        && request.az.is_none_or(|az| az == bucket.az)
                    {
                        feasible_buckets += 1;
                        if opts.count_stats {
                            self.index_stats.buckets_examined += 1;
                        }
                        'bucket: for &i in &bucket.hosts {
                            let host = &hosts[i as usize];
                            for f in &self.filters {
                                if let Err(reason) = f.check(request, host) {
                                    reject_counts[reason as usize] += 1;
                                    continue 'bucket;
                                }
                            }
                            self.scratch.survivors.push(i as usize);
                        }
                    } else {
                        if opts.count_stats {
                            self.index_stats.buckets_pruned += 1;
                            self.index_stats.hosts_pruned += bucket.hosts.len() as u64;
                        }
                        // Whole bucket pruned. Attribute each host to the
                        // reason the standard chain would emit: status is
                        // checked first (disabled wins), then AZ, then
                        // purpose — so the healthy remainder is wrong-AZ
                        // when the request pins a different AZ, else
                        // wrong-purpose.
                        reject_counts[RejectReason::HostDisabled as usize] += bucket.disabled;
                        let healthy = bucket.hosts.len() as u32 - bucket.disabled;
                        let reason = if request.az.is_some_and(|az| az != bucket.az) {
                            RejectReason::WrongAz
                        } else {
                            RejectReason::WrongPurpose
                        };
                        reject_counts[reason as usize] += healthy;
                    }
                }
                if feasible_buckets > 1 {
                    // Survivors from different buckets interleave; restore
                    // the ascending order a full scan produces. (A single
                    // bucket is already ascending.)
                    self.scratch.survivors.sort_unstable();
                }
            }
        }

        for (reason, &n) in RejectReason::ALL.iter().zip(&reject_counts) {
            if n > 0 {
                out.rejections.push((*reason, n));
                if opts.count_stats {
                    *self.stats.rejections.entry(*reason).or_insert(0) += n as u64;
                }
            }
        }

        if self.scratch.survivors.is_empty() {
            if opts.count_stats {
                self.stats.failed += 1;
            }
            let mut rej = out.rejections.clone();
            rej.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            return Err(ScheduleError {
                rejections: rej,
                candidates: hosts.len() as u32,
            });
        }

        // Weighing stage: min-max normalize each weigher across survivors,
        // keeping each weigher's contribution vector for the audit log.
        let n = self.scratch.survivors.len();
        self.scratch.totals.clear();
        self.scratch.totals.resize(n, 0.0);
        for (multiplier, weigher) in &self.weighers {
            let mut scores = self.scratch.contrib_pool.pop().unwrap_or_default();
            scores.clear();
            scores.extend(
                self.scratch
                    .survivors
                    .iter()
                    .map(|&i| weigher.weigh(request, &hosts[i])),
            );
            let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let span = hi - lo;
            for s in scores.iter_mut() {
                let norm = if span > 0.0 { (*s - lo) / span } else { 0.0 };
                *s = multiplier * norm;
            }
            for (t, s) in self.scratch.totals.iter_mut().zip(&scores) {
                *t += s;
            }
            // Stored in survivor order for now; permuted into rank order
            // below, once the permutation is known.
            out.weigher_scores.push((weigher.name(), scores));
        }

        let RankScratch {
            survivors,
            totals,
            perm,
            contrib_pool,
        } = &mut self.scratch;
        perm.clear();
        perm.extend(0..n);
        let cmp = |a: &usize, b: &usize| {
            totals[*b]
                .partial_cmp(&totals[*a])
                // Weigher totals are finite by construction; if a custom
                // weigher ever emits NaN, treat the pair as tied and fall
                // through to the index tiebreak instead of panicking in
                // the middle of a run.
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| survivors[*a].cmp(&survivors[*b]))
        };
        let k = opts.top_k.min(n);
        if k > 0 && k < n {
            // Partial selection: put the best k in the head, then order
            // the head. Identical to the first k entries of the full sort
            // because the comparator totally orders distinct survivors.
            perm.select_nth_unstable_by(k - 1, |a, b| cmp(a, b));
            perm[..k].sort_unstable_by(|a, b| cmp(a, b));
            out.sorted_len = k;
        } else {
            perm.sort_by(|a, b| cmp(a, b));
            out.sorted_len = n;
        }

        out.order.extend(perm.iter().map(|&j| survivors[j]));
        out.scores.extend(perm.iter().map(|&j| totals[j]));
        for (_, contrib) in out.weigher_scores.iter_mut() {
            let mut mapped = contrib_pool.pop().unwrap_or_default();
            mapped.clear();
            mapped.extend(perm.iter().map(|&j| contrib[j]));
            let raw = std::mem::replace(contrib, mapped);
            contrib_pool.push(raw);
        }

        if opts.count_stats {
            self.stats.scheduled += 1;
        }
        Ok(())
    }

    /// Convenience: the single best candidate.
    pub fn select(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<usize, ScheduleError> {
        Ok(self.rank(request, hosts)?.best())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{default_filters, ComputeStatusFilter};
    use crate::request::test_support::host;
    use crate::weigher::{CpuWeigher, RamWeigher};
    use sapsim_topology::{AzId, BbPurpose, Resources};

    fn req(cpu: u32, mem: u64) -> PlacementRequest {
        PlacementRequest::new(1, Resources::new(cpu, mem, 1), BbPurpose::GeneralPurpose)
    }

    fn spread_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![
                (1.0, Box::new(CpuWeigher) as Box<dyn Weigher>),
                (1.0, Box::new(RamWeigher)),
            ],
        )
    }

    fn pack_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![(-1.0, Box::new(RamWeigher) as Box<dyn Weigher>)],
        )
    }

    #[test]
    fn spreading_prefers_the_emptiest_host() {
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.order, vec![1, 2, 0]);
        assert_eq!(ranked.best(), 1);
    }

    #[test]
    fn negative_multiplier_bin_packs() {
        // The fullest host that still fits wins — the HANA strategy.
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = pack_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.order, vec![0, 2, 1]);
    }

    #[test]
    fn filtered_hosts_never_appear_in_the_ranking() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO), // too small
            host(2, Resources::new(100, 1000, 100), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(4, 100), &hosts).unwrap();
        assert_eq!(ranked.order, vec![2]);
    }

    #[test]
    fn success_path_reports_candidates_and_eliminations() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO), // too small
            host(2, Resources::new(100, 1000, 100), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(4, 100), &hosts).unwrap();
        assert_eq!(ranked.candidates, 3);
        assert_eq!(ranked.sorted_len, ranked.order.len());
        // One host disabled, one short on CPU — in stable reason order.
        assert_eq!(
            ranked.rejections,
            vec![
                (RejectReason::HostDisabled, 1),
                (RejectReason::InsufficientCpu, 1),
            ]
        );
    }

    #[test]
    fn per_weigher_scores_are_aligned_and_sum_to_totals() {
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.weigher_scores.len(), 2);
        assert_eq!(ranked.weigher_scores[0].0, "cpu");
        assert_eq!(ranked.weigher_scores[1].0, "ram");
        for (i, &total) in ranked.scores.iter().enumerate() {
            let sum: f64 = ranked.weigher_scores.iter().map(|(_, c)| c[i]).sum();
            assert!((sum - total).abs() < 1e-12, "column {i}: {sum} vs {total}");
        }
        // Scores are best-first, aligned with `order`.
        assert!(ranked.scores.windows(2).all(|w| w[0] >= w[1]));
        let top: Vec<_> = ranked.top_k(2).collect();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, ranked.order[0]);
        assert_eq!(top[0].1, ranked.scores[0]);
    }

    #[test]
    fn no_valid_host_reports_reasons() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![disabled, host(1, Resources::new(1, 10, 1), Resources::ZERO)];
        let mut s = spread_scheduler();
        let err = s.rank(&req(4, 100), &hosts).unwrap_err();
        let total: u32 = err.rejections.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2);
        assert_eq!(err.candidates, 2);
        assert!(err.to_string().contains("no valid host"));
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn error_rejections_sort_by_count_then_reason() {
        // Two hosts short on CPU, one disabled → CPU first (higher count),
        // and equal counts fall back to reason declaration order.
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO),
            host(2, Resources::new(1, 10, 1), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let err = s.rank(&req(4, 100), &hosts).unwrap_err();
        assert_eq!(
            err.rejections,
            vec![
                (RejectReason::InsufficientCpu, 2),
                (RejectReason::HostDisabled, 1),
            ]
        );
    }

    #[test]
    fn empty_candidate_list_fails_cleanly() {
        let mut s = spread_scheduler();
        let err = s.rank(&req(1, 1), &[]).unwrap_err();
        assert!(err.rejections.is_empty());
        assert_eq!(err.candidates, 0);
    }

    #[test]
    fn equal_hosts_tie_break_by_index() {
        let hosts = vec![
            host(0, Resources::new(10, 100, 10), Resources::ZERO),
            host(1, Resources::new(10, 100, 10), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        assert_eq!(s.rank(&req(1, 1), &hosts).unwrap().order, vec![0, 1]);
    }

    #[test]
    fn single_weigher_normalization_is_scale_invariant() {
        // Doubling all free capacities must not change the ranking.
        let mk = |scale: u32| {
            vec![
                host(
                    0,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(30 * scale, 0, 0),
                ),
                host(
                    1,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(70 * scale, 0, 0),
                ),
                host(
                    2,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(50 * scale, 0, 0),
                ),
            ]
        };
        let mut s1 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let mut s2 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let r1 = s1.rank(&req(1, 1), &mk(1)).unwrap();
        let r2 = s2.rank(&req(1, 1), &mk(2)).unwrap();
        assert_eq!(r1.order, r2.order);
    }

    #[test]
    fn stats_accumulate() {
        let hosts = vec![host(0, Resources::new(10, 100, 10), Resources::ZERO)];
        let mut s = spread_scheduler();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(100, 1), &hosts).unwrap_err();
        assert_eq!(s.stats().requests, 3);
        assert_eq!(s.stats().scheduled, 2);
        assert_eq!(s.stats().failed, 1);
        assert_eq!(
            s.stats().rejections.get(&RejectReason::InsufficientCpu),
            Some(&1)
        );
    }

    #[test]
    fn status_only_pipeline_keeps_order_with_no_weighers() {
        let hosts = vec![
            host(0, Resources::new(1, 1, 1), Resources::ZERO),
            host(1, Resources::new(1, 1, 1), Resources::ZERO),
        ];
        let mut s = FilterScheduler::new(vec![Box::new(ComputeStatusFilter)], vec![]);
        let ranked = s.rank(&req(0, 0), &hosts).unwrap();
        assert_eq!(ranked.order, vec![0, 1]);
        assert!(ranked.weigher_scores.is_empty());
        assert_eq!(ranked.scores, vec![0.0, 0.0]);
    }

    /// A host set spanning two AZs and two purposes, with a disabled host
    /// and an undersized host sprinkled in, so indexed pruning has real
    /// work to do.
    fn mixed_fleet() -> Vec<HostView> {
        (0..12u32)
            .map(|i| {
                let mut h = host(
                    i,
                    Resources::new(100, 1000, 100),
                    Resources::new(i * 5, i as u64 * 40, 0),
                );
                h.az = AzId::from_raw(i % 2);
                if i >= 8 {
                    h.purpose = BbPurpose::Hana;
                }
                if i == 3 {
                    h.enabled = false;
                }
                if i == 5 {
                    h.capacity = Resources::new(1, 10, 1); // too small
                    h.allocated = Resources::ZERO;
                }
                h
            })
            .collect()
    }

    #[test]
    fn indexed_rank_matches_full_scan_exactly() {
        let hosts = mixed_fleet();
        let index = CandidateIndex::build(&hosts);
        for request in [
            req(4, 100),
            req(4, 100).in_az(AzId::from_raw(0)),
            req(4, 100).in_az(AzId::from_raw(1)),
            PlacementRequest::new(9, Resources::new(4, 100, 1), BbPurpose::Hana)
                .in_az(AzId::from_raw(0)),
        ] {
            let mut naive = spread_scheduler();
            let mut indexed = spread_scheduler();
            let full = naive.rank(&request, &hosts).unwrap();
            let mut out = Ranking::default();
            indexed
                .rank_into(
                    &request,
                    &hosts,
                    RankOptions {
                        index: Some(&index),
                        top_k: usize::MAX,
                        count_stats: true,
                    },
                    &mut out,
                )
                .unwrap();
            assert_eq!(out, full, "request {request:?}");
            assert_eq!(naive.stats(), indexed.stats());
        }
    }

    #[test]
    fn indexed_error_matches_full_scan_attribution() {
        // A HANA request pinned to an AZ with no HANA hosts at all: the
        // index prunes every bucket, yet the per-reason attribution must
        // match the filter chain (disabled first, then AZ, then purpose).
        let mut hosts = mixed_fleet();
        for h in hosts.iter_mut().filter(|h| h.purpose == BbPurpose::Hana) {
            h.az = AzId::from_raw(1);
        }
        let index = CandidateIndex::build(&hosts);
        let request = PlacementRequest::new(9, Resources::new(4, 100, 1), BbPurpose::Hana)
            .in_az(AzId::from_raw(0));
        let mut naive = spread_scheduler();
        let mut indexed = spread_scheduler();
        let full = naive.rank(&request, &hosts).unwrap_err();
        let mut out = Ranking::default();
        let err = indexed
            .rank_into(
                &request,
                &hosts,
                RankOptions {
                    index: Some(&index),
                    top_k: usize::MAX,
                    count_stats: true,
                },
                &mut out,
            )
            .unwrap_err();
        assert_eq!(err, full);
        assert_eq!(naive.stats(), indexed.stats());
    }

    #[test]
    fn index_stats_count_prune_effectiveness() {
        // mixed_fleet partitions into 4 buckets: GeneralPurpose × {az0,
        // az1} (4 hosts each) and Hana × {az0, az1} (2 hosts each).
        let hosts = mixed_fleet();
        let index = CandidateIndex::build(&hosts);
        let mut s = spread_scheduler();
        let mut out = Ranking::default();

        // GP request, no AZ pin: both Hana buckets pruned (4 hosts).
        s.rank_into(
            &req(4, 100),
            &hosts,
            RankOptions {
                index: Some(&index),
                top_k: usize::MAX,
                count_stats: true,
            },
            &mut out,
        )
        .unwrap();
        let st = *s.index_stats();
        assert_eq!(st.indexed_requests, 1);
        assert_eq!(st.full_scans, 0);
        assert_eq!(st.buckets_examined, 2);
        assert_eq!(st.buckets_pruned, 2);
        assert_eq!(st.hosts_pruned, 4);

        // GP request pinned to az0: only one bucket survives; the other
        // GP bucket (4 hosts) and both Hana buckets (4 hosts) are pruned.
        s.rank_into(
            &req(4, 100).in_az(AzId::from_raw(0)),
            &hosts,
            RankOptions {
                index: Some(&index),
                top_k: usize::MAX,
                count_stats: true,
            },
            &mut out,
        )
        .unwrap();
        let st = *s.index_stats();
        assert_eq!(st.indexed_requests, 2);
        assert_eq!(st.buckets_examined, 3);
        assert_eq!(st.buckets_pruned, 5);
        assert_eq!(st.hosts_pruned, 12);

        // A full scan counts as such, and an uncounted continuation pass
        // leaves every index counter untouched.
        s.rank_into(&req(4, 100), &hosts, RankOptions::exhaustive(), &mut out)
            .unwrap();
        assert_eq!(s.index_stats().full_scans, 1);
        let before = *s.index_stats();
        s.rank_into(
            &req(4, 100),
            &hosts,
            RankOptions {
                index: Some(&index),
                top_k: usize::MAX,
                count_stats: false,
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(*s.index_stats(), before);

        // And none of this bookkeeping leaks into the comparable stats.
        let mut naive = spread_scheduler();
        naive.rank(&req(4, 100), &hosts).unwrap();
        let mut indexed = spread_scheduler();
        indexed
            .rank_into(
                &req(4, 100),
                &hosts,
                RankOptions {
                    index: Some(&index),
                    top_k: usize::MAX,
                    count_stats: true,
                },
                &mut out,
            )
            .unwrap();
        assert_eq!(naive.stats(), indexed.stats());
    }

    #[test]
    fn top_k_head_matches_full_sort() {
        let hosts = mixed_fleet();
        let index = CandidateIndex::build(&hosts);
        let request = req(4, 100);
        let mut naive = spread_scheduler();
        let full = naive.rank(&request, &hosts).unwrap();
        for k in 1..=full.order.len() + 1 {
            let mut s = spread_scheduler();
            let mut out = Ranking::default();
            s.rank_into(
                &request,
                &hosts,
                RankOptions {
                    index: Some(&index),
                    top_k: k,
                    count_stats: true,
                },
                &mut out,
            )
            .unwrap();
            assert_eq!(out.sorted_len, k.min(full.order.len()));
            assert_eq!(&out.order[..out.sorted_len], &full.order[..out.sorted_len]);
            assert_eq!(
                &out.scores[..out.sorted_len],
                &full.scores[..out.sorted_len]
            );
            // The tail still contains every survivor exactly once.
            let mut all = out.order.clone();
            all.sort_unstable();
            let mut expect = full.order.clone();
            expect.sort_unstable();
            assert_eq!(all, expect, "k = {k}");
        }
    }

    #[test]
    fn rank_into_reuses_buffers_across_pipelines() {
        // The same output Ranking cycled through schedulers with different
        // weigher counts: results stay correct and buffers recycle.
        let hosts = mixed_fleet();
        let mut spread = spread_scheduler();
        let mut pack = pack_scheduler();
        let mut out = Ranking::default();
        for _ in 0..3 {
            out.rank_sanity(&mut spread, &req(2, 50), &hosts, 2);
            out.rank_sanity(&mut pack, &req(2, 50), &hosts, 1);
        }
    }

    impl Ranking {
        /// Test helper: rank into self and cross-check against a fresh
        /// exhaustive pass.
        fn rank_sanity(
            &mut self,
            s: &mut FilterScheduler,
            request: &PlacementRequest,
            hosts: &[HostView],
            weighers: usize,
        ) {
            s.rank_into(request, hosts, RankOptions::exhaustive(), self)
                .unwrap();
            assert_eq!(self.weigher_scores.len(), weighers);
            assert_eq!(self.order.len(), self.scores.len());
            assert_eq!(self.sorted_len, self.order.len());
            for (_, c) in &self.weigher_scores {
                assert_eq!(c.len(), self.order.len());
            }
        }
    }

    #[test]
    fn continuation_pass_skips_stats() {
        let hosts = mixed_fleet();
        let mut s = spread_scheduler();
        let mut out = Ranking::default();
        s.rank_into(
            &req(2, 50),
            &hosts,
            RankOptions {
                index: None,
                top_k: 2,
                count_stats: true,
            },
            &mut out,
        )
        .unwrap();
        let after_first = s.stats().clone();
        // Re-rank the same request for the full order: no new counts.
        s.rank_into(
            &req(2, 50),
            &hosts,
            RankOptions::exhaustive().uncounted(),
            &mut out,
        )
        .unwrap();
        assert_eq!(s.stats(), &after_first);
        assert_eq!(out.sorted_len, out.order.len());
    }

    impl RankOptions<'static> {
        fn uncounted(mut self) -> Self {
            self.count_stats = false;
            self
        }
    }
}
