//! The filter-and-weigher pipeline: Nova's scheduler core.

use crate::filter::Filter;
use crate::request::{HostView, PlacementRequest, RejectReason};
use crate::weigher::Weigher;
use std::collections::BTreeMap;
use std::fmt;

/// Scheduling failure: no candidate survived filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// How many candidates each reason eliminated, sorted by count
    /// descending, then by reason — a stable order, independent of hash
    /// state.
    pub rejections: Vec<(RejectReason, usize)>,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no valid host found (")?;
        for (i, (reason, count)) in self.rejections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{count}× {reason}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ScheduleError {}

/// Running counters of pipeline activity, for the scheduling-efficiency
/// analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Placement decisions requested.
    pub requests: u64,
    /// Requests for which at least one candidate survived.
    pub scheduled: u64,
    /// Requests that failed outright.
    pub failed: u64,
    /// Candidates eliminated, by reason. A `BTreeMap` so iteration (and
    /// therefore every stats dump) has one deterministic order.
    pub rejections: BTreeMap<RejectReason, u64>,
}

/// The structured result of one successful pipeline pass: the ranked
/// survivors plus everything the filter and weigher stages learned on the
/// way — enough to audit the decision without a second pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Surviving candidates as indices into the `hosts` slice passed to
    /// [`FilterScheduler::rank`], best first.
    pub order: Vec<usize>,
    /// Combined (multiplier-weighted, normalized) score of each entry in
    /// `order`, aligned index-for-index.
    pub scores: Vec<f64>,
    /// Per-weigher score contributions: for each configured weigher, its
    /// name and the contribution it added to each entry of `order`
    /// (aligned index-for-index). Summing column-wise reproduces
    /// `scores`.
    pub weigher_scores: Vec<(&'static str, Vec<f64>)>,
    /// How many candidates each filter reason eliminated, in reason
    /// order. Empty when every candidate survived.
    pub rejections: Vec<(RejectReason, u32)>,
    /// Size of the candidate set examined (survivors + eliminated).
    pub candidates: usize,
}

impl Ranking {
    /// The winning candidate (index into the original `hosts` slice).
    ///
    /// # Panics
    /// Never: a `Ranking` is only constructed with at least one survivor.
    pub fn best(&self) -> usize {
        self.order[0]
    }

    /// The best `k` candidates with their combined scores, best first.
    pub fn top_k(&self, k: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.order
            .iter()
            .zip(&self.scores)
            .take(k)
            .map(|(&host, &score)| (host, score))
    }
}

/// An OpenStack-Nova-style scheduler: a filter chain followed by a set of
/// multiplier-weighted weighers (paper Figure 3).
///
/// [`FilterScheduler::rank`] returns *all* surviving candidates in
/// preference order rather than just the winner, because Nova "implements a
/// greedy approach with retries reapplying filters and weighers, which
/// yields multiple suitable candidates" (paper Section 2.2) — the caller
/// walks the list until a claim succeeds.
pub struct FilterScheduler {
    filters: Vec<Box<dyn Filter>>,
    weighers: Vec<(f64, Box<dyn Weigher>)>,
    stats: PipelineStats,
}

impl fmt::Debug for FilterScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterScheduler")
            .field(
                "filters",
                &self.filters.iter().map(|x| x.name()).collect::<Vec<_>>(),
            )
            .field(
                "weighers",
                &self
                    .weighers
                    .iter()
                    .map(|(m, w)| (*m, w.name()))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl FilterScheduler {
    /// A scheduler with explicit filter and weigher chains. Each weigher
    /// carries a multiplier; negative multipliers turn a spreading weigher
    /// into a packing one.
    pub fn new(filters: Vec<Box<dyn Filter>>, weighers: Vec<(f64, Box<dyn Weigher>)>) -> Self {
        FilterScheduler {
            filters,
            weighers,
            stats: PipelineStats::default(),
        }
    }

    /// Pipeline activity counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Run the pipeline: filter `hosts`, then rank the survivors
    /// best-first. The returned [`Ranking`] carries the order, the
    /// combined and per-weigher scores, and the per-filter elimination
    /// counts of this pass.
    ///
    /// Ranking follows Nova's weigher semantics: each weigher's raw scores
    /// are min-max normalized to `[0, 1]` across the surviving candidates,
    /// multiplied by the weigher's multiplier, and summed. Ties break by
    /// candidate index, which keeps the pipeline fully deterministic.
    pub fn rank(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<Ranking, ScheduleError> {
        self.stats.requests += 1;

        // Filter stage.
        let mut survivors: Vec<usize> = Vec::with_capacity(hosts.len());
        let mut rejections: BTreeMap<RejectReason, u32> = BTreeMap::new();
        'candidates: for (i, host) in hosts.iter().enumerate() {
            for f in &self.filters {
                if let Err(reason) = f.check(request, host) {
                    *rejections.entry(reason).or_insert(0) += 1;
                    *self.stats.rejections.entry(reason).or_insert(0) += 1;
                    continue 'candidates;
                }
            }
            survivors.push(i);
        }

        if survivors.is_empty() {
            self.stats.failed += 1;
            let mut rej: Vec<(RejectReason, usize)> = rejections
                .into_iter()
                .map(|(reason, n)| (reason, n as usize))
                .collect();
            rej.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            return Err(ScheduleError { rejections: rej });
        }

        // Weighing stage: min-max normalize each weigher across survivors,
        // keeping each weigher's contribution vector for the audit log.
        let mut totals = vec![0.0f64; survivors.len()];
        let mut contributions: Vec<(&'static str, Vec<f64>)> =
            Vec::with_capacity(self.weighers.len());
        for (multiplier, weigher) in &self.weighers {
            let mut scores: Vec<f64> = survivors
                .iter()
                .map(|&i| weigher.weigh(request, &hosts[i]))
                .collect();
            let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let span = hi - lo;
            for s in scores.iter_mut() {
                let norm = if span > 0.0 { (*s - lo) / span } else { 0.0 };
                *s = multiplier * norm;
            }
            for (t, s) in totals.iter_mut().zip(&scores) {
                *t += s;
            }
            contributions.push((weigher.name(), scores));
        }

        let mut perm: Vec<usize> = (0..survivors.len()).collect();
        perm.sort_by(|&a, &b| {
            totals[b]
                .partial_cmp(&totals[a])
                // Weigher totals are finite by construction; if a custom
                // weigher ever emits NaN, treat the pair as tied and fall
                // through to the index tiebreak instead of panicking in
                // the middle of a run.
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| survivors[a].cmp(&survivors[b]))
        });

        let order: Vec<usize> = perm.iter().map(|&k| survivors[k]).collect();
        let scores: Vec<f64> = perm.iter().map(|&k| totals[k]).collect();
        let weigher_scores: Vec<(&'static str, Vec<f64>)> = contributions
            .into_iter()
            .map(|(name, contrib)| (name, perm.iter().map(|&k| contrib[k]).collect()))
            .collect();

        self.stats.scheduled += 1;
        Ok(Ranking {
            order,
            scores,
            weigher_scores,
            rejections: rejections.into_iter().collect(),
            candidates: hosts.len(),
        })
    }

    /// Convenience: the single best candidate.
    pub fn select(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<usize, ScheduleError> {
        Ok(self.rank(request, hosts)?.best())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{default_filters, ComputeStatusFilter};
    use crate::request::test_support::host;
    use crate::weigher::{CpuWeigher, RamWeigher};
    use sapsim_topology::{BbPurpose, Resources};

    fn req(cpu: u32, mem: u64) -> PlacementRequest {
        PlacementRequest::new(1, Resources::new(cpu, mem, 1), BbPurpose::GeneralPurpose)
    }

    fn spread_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![
                (1.0, Box::new(CpuWeigher) as Box<dyn Weigher>),
                (1.0, Box::new(RamWeigher)),
            ],
        )
    }

    fn pack_scheduler() -> FilterScheduler {
        FilterScheduler::new(
            default_filters(),
            vec![(-1.0, Box::new(RamWeigher) as Box<dyn Weigher>)],
        )
    }

    #[test]
    fn spreading_prefers_the_emptiest_host() {
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.order, vec![1, 2, 0]);
        assert_eq!(ranked.best(), 1);
    }

    #[test]
    fn negative_multiplier_bin_packs() {
        // The fullest host that still fits wins — the HANA strategy.
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = pack_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.order, vec![0, 2, 1]);
    }

    #[test]
    fn filtered_hosts_never_appear_in_the_ranking() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO), // too small
            host(2, Resources::new(100, 1000, 100), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(4, 100), &hosts).unwrap();
        assert_eq!(ranked.order, vec![2]);
    }

    #[test]
    fn success_path_reports_candidates_and_eliminations() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO), // too small
            host(2, Resources::new(100, 1000, 100), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(4, 100), &hosts).unwrap();
        assert_eq!(ranked.candidates, 3);
        // One host disabled, one short on CPU — in stable reason order.
        assert_eq!(
            ranked.rejections,
            vec![
                (RejectReason::HostDisabled, 1),
                (RejectReason::InsufficientCpu, 1),
            ]
        );
    }

    #[test]
    fn per_weigher_scores_are_aligned_and_sum_to_totals() {
        let hosts = vec![
            host(
                0,
                Resources::new(100, 1000, 100),
                Resources::new(80, 800, 0),
            ),
            host(
                1,
                Resources::new(100, 1000, 100),
                Resources::new(10, 100, 0),
            ),
            host(
                2,
                Resources::new(100, 1000, 100),
                Resources::new(50, 500, 0),
            ),
        ];
        let mut s = spread_scheduler();
        let ranked = s.rank(&req(2, 50), &hosts).unwrap();
        assert_eq!(ranked.weigher_scores.len(), 2);
        assert_eq!(ranked.weigher_scores[0].0, "cpu");
        assert_eq!(ranked.weigher_scores[1].0, "ram");
        for (i, &total) in ranked.scores.iter().enumerate() {
            let sum: f64 = ranked.weigher_scores.iter().map(|(_, c)| c[i]).sum();
            assert!((sum - total).abs() < 1e-12, "column {i}: {sum} vs {total}");
        }
        // Scores are best-first, aligned with `order`.
        assert!(ranked.scores.windows(2).all(|w| w[0] >= w[1]));
        let top: Vec<_> = ranked.top_k(2).collect();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, ranked.order[0]);
        assert_eq!(top[0].1, ranked.scores[0]);
    }

    #[test]
    fn no_valid_host_reports_reasons() {
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![disabled, host(1, Resources::new(1, 10, 1), Resources::ZERO)];
        let mut s = spread_scheduler();
        let err = s.rank(&req(4, 100), &hosts).unwrap_err();
        let total: usize = err.rejections.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2);
        assert!(err.to_string().contains("no valid host"));
        assert_eq!(s.stats().failed, 1);
    }

    #[test]
    fn error_rejections_sort_by_count_then_reason() {
        // Two hosts short on CPU, one disabled → CPU first (higher count),
        // and equal counts fall back to reason declaration order.
        let mut disabled = host(0, Resources::new(100, 1000, 100), Resources::ZERO);
        disabled.enabled = false;
        let hosts = vec![
            disabled,
            host(1, Resources::new(1, 10, 1), Resources::ZERO),
            host(2, Resources::new(1, 10, 1), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        let err = s.rank(&req(4, 100), &hosts).unwrap_err();
        assert_eq!(
            err.rejections,
            vec![
                (RejectReason::InsufficientCpu, 2),
                (RejectReason::HostDisabled, 1),
            ]
        );
    }

    #[test]
    fn empty_candidate_list_fails_cleanly() {
        let mut s = spread_scheduler();
        let err = s.rank(&req(1, 1), &[]).unwrap_err();
        assert!(err.rejections.is_empty());
    }

    #[test]
    fn equal_hosts_tie_break_by_index() {
        let hosts = vec![
            host(0, Resources::new(10, 100, 10), Resources::ZERO),
            host(1, Resources::new(10, 100, 10), Resources::ZERO),
        ];
        let mut s = spread_scheduler();
        assert_eq!(s.rank(&req(1, 1), &hosts).unwrap().order, vec![0, 1]);
    }

    #[test]
    fn single_weigher_normalization_is_scale_invariant() {
        // Doubling all free capacities must not change the ranking.
        let mk = |scale: u32| {
            vec![
                host(
                    0,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(30 * scale, 0, 0),
                ),
                host(
                    1,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(70 * scale, 0, 0),
                ),
                host(
                    2,
                    Resources::new(100 * scale, 1000, 100),
                    Resources::new(50 * scale, 0, 0),
                ),
            ]
        };
        let mut s1 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let mut s2 = FilterScheduler::new(
            default_filters(),
            vec![(1.0, Box::new(CpuWeigher) as Box<dyn Weigher>)],
        );
        let r1 = s1.rank(&req(1, 1), &mk(1)).unwrap();
        let r2 = s2.rank(&req(1, 1), &mk(2)).unwrap();
        assert_eq!(r1.order, r2.order);
    }

    #[test]
    fn stats_accumulate() {
        let hosts = vec![host(0, Resources::new(10, 100, 10), Resources::ZERO)];
        let mut s = spread_scheduler();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(1, 1), &hosts).unwrap();
        s.rank(&req(100, 1), &hosts).unwrap_err();
        assert_eq!(s.stats().requests, 3);
        assert_eq!(s.stats().scheduled, 2);
        assert_eq!(s.stats().failed, 1);
        assert_eq!(
            s.stats().rejections.get(&RejectReason::InsufficientCpu),
            Some(&1)
        );
    }

    #[test]
    fn status_only_pipeline_keeps_order_with_no_weighers() {
        let hosts = vec![
            host(0, Resources::new(1, 1, 1), Resources::ZERO),
            host(1, Resources::new(1, 1, 1), Resources::ZERO),
        ];
        let mut s = FilterScheduler::new(vec![Box::new(ComputeStatusFilter)], vec![]);
        let ranked = s.rank(&req(0, 0), &hosts).unwrap();
        assert_eq!(ranked.order, vec![0, 1]);
        assert!(ranked.weigher_scores.is_empty());
        assert_eq!(ranked.scores, vec![0.0, 0.0]);
    }
}
