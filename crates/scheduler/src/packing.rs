//! Classic bin-packing strategies.
//!
//! The paper frames VM-to-host assignment as bin packing (Section 3.2):
//! "Well-known strategies with low computational effort include First-Fit,
//! Best-Fit, and Worst-Fit." These serve two roles here:
//!
//! * [`BinPacker::choose`] — an online policy usable in place of the
//!   Nova pipeline, for baseline comparisons;
//! * [`pack_all`] — offline packing of a whole item list into
//!   identical bins, for the "maximize placeable VMs per flavor"
//!   optimization objective and the ablation benches.

use crate::request::HostView;
use sapsim_topology::{ResourceKind, Resources};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An offline (decreasing) strategy was handed to the online
/// [`BinPacker`], which processes items one at a time and cannot pre-sort
/// them. Use [`pack_all`] for the decreasing variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineStrategyError(pub PackingStrategy);

impl fmt::Display for OfflineStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} is an offline strategy; the online BinPacker cannot pre-sort items \
             (use pack_all)",
            self.0
        )
    }
}

impl std::error::Error for OfflineStrategyError {}

/// The classic heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackingStrategy {
    /// First bin (in index order) with room.
    FirstFit,
    /// Bin with the least remaining room (on the packing dimension) that
    /// still fits — tightest fit.
    BestFit,
    /// Bin with the most remaining room.
    WorstFit,
    /// First-Fit over items sorted by decreasing size (offline only).
    FirstFitDecreasing,
    /// Best-Fit over items sorted by decreasing size (offline only).
    BestFitDecreasing,
}

impl PackingStrategy {
    /// All strategies.
    pub const ALL: [PackingStrategy; 5] = [
        PackingStrategy::FirstFit,
        PackingStrategy::BestFit,
        PackingStrategy::WorstFit,
        PackingStrategy::FirstFitDecreasing,
        PackingStrategy::BestFitDecreasing,
    ];

    /// Whether the strategy pre-sorts items (offline).
    pub fn is_decreasing(self) -> bool {
        matches!(
            self,
            PackingStrategy::FirstFitDecreasing | PackingStrategy::BestFitDecreasing
        )
    }

    /// The online rule this strategy applies per item. Collapsing the
    /// decreasing variants here (rather than at each use site) means the
    /// per-item dispatch below is exhaustive — no `unreachable!()` on the
    /// hot path.
    fn online_rule(self) -> OnlineRule {
        match self {
            PackingStrategy::FirstFit | PackingStrategy::FirstFitDecreasing => OnlineRule::First,
            PackingStrategy::BestFit | PackingStrategy::BestFitDecreasing => OnlineRule::Best,
            PackingStrategy::WorstFit => OnlineRule::Worst,
        }
    }
}

/// The per-item placement rule after offline pre-sorting is factored out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnlineRule {
    First,
    Best,
    Worst,
}

/// An online bin-packing chooser over host views.
#[derive(Debug, Clone, Copy)]
pub struct BinPacker {
    /// Which heuristic to apply.
    pub strategy: PackingStrategy,
    /// Which resource dimension defines "fullness". The paper's HANA
    /// placement packs on memory (Section 7: "memory-based bin-packing
    /// strategies are required").
    pub dimension: ResourceKind,
}

impl BinPacker {
    /// A packer using `strategy` on `dimension`. The decreasing variants
    /// are offline-only and are rejected with a typed error instead of a
    /// panic, so callers wiring a strategy from config can surface the
    /// mistake gracefully.
    pub fn new(
        strategy: PackingStrategy,
        dimension: ResourceKind,
    ) -> Result<Self, OfflineStrategyError> {
        if strategy.is_decreasing() {
            return Err(OfflineStrategyError(strategy));
        }
        Ok(BinPacker {
            strategy,
            dimension,
        })
    }

    /// Pick a host for `request` among `hosts`, honoring every dimension
    /// for fit but ranking by the packing dimension. Returns an index into
    /// `hosts`, or `None` if nothing fits. Disabled hosts are skipped.
    pub fn choose(&self, request: &Resources, hosts: &[HostView]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, h) in hosts.iter().enumerate() {
            if !h.enabled || !h.fits(request) {
                continue;
            }
            let remaining = h.free().get(self.dimension) - request.get(self.dimension);
            match self.strategy.online_rule() {
                OnlineRule::First => return Some(i),
                OnlineRule::Best => {
                    if best.is_none_or(|(_, r)| remaining < r) {
                        best = Some((i, remaining));
                    }
                }
                OnlineRule::Worst => {
                    if best.is_none_or(|(_, r)| remaining > r) {
                        best = Some((i, remaining));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Result of offline packing.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingOutcome {
    /// Per-item bin assignment (`None` = unplaceable even in a fresh bin).
    pub assignments: Vec<Option<usize>>,
    /// Allocated resources per opened bin.
    pub bins: Vec<Resources>,
    /// Number of items that could not be placed.
    pub unplaced: usize,
}

impl PackingOutcome {
    /// Number of bins opened.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }
}

/// Pack `items` into identical bins of `capacity` using `strategy`,
/// opening new bins on demand. Items that exceed a whole empty bin are
/// reported unplaced. `dimension` defines fullness ranking (fit is always
/// checked on all dimensions).
pub fn pack_all(
    items: &[Resources],
    capacity: Resources,
    strategy: PackingStrategy,
    dimension: ResourceKind,
) -> PackingOutcome {
    // Order of processing: original, or decreasing on the dimension.
    let mut order: Vec<usize> = (0..items.len()).collect();
    if strategy.is_decreasing() {
        order.sort_by(|&a, &b| {
            items[b]
                .get(dimension)
                .partial_cmp(&items[a].get(dimension))
                // A NaN quantity (impossible for well-formed resources)
                // degrades to "equal" and the index tiebreak keeps the
                // sort deterministic, instead of panicking mid-pack.
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
    }
    let rule = strategy.online_rule();

    let mut bins: Vec<Resources> = Vec::new();
    let mut assignments: Vec<Option<usize>> = vec![None; items.len()];
    let mut unplaced = 0usize;

    for &idx in &order {
        let item = &items[idx];
        if !capacity.fits(item) {
            unplaced += 1;
            continue;
        }
        let mut chosen: Option<(usize, f64)> = None;
        for (b, used) in bins.iter().enumerate() {
            let free = capacity.saturating_sub(used);
            if !free.fits(item) {
                continue;
            }
            let remaining = free.get(dimension) - item.get(dimension);
            match rule {
                OnlineRule::First => {
                    chosen = Some((b, remaining));
                    break;
                }
                OnlineRule::Best => {
                    if chosen.is_none_or(|(_, r)| remaining < r) {
                        chosen = Some((b, remaining));
                    }
                }
                OnlineRule::Worst => {
                    if chosen.is_none_or(|(_, r)| remaining > r) {
                        chosen = Some((b, remaining));
                    }
                }
            }
        }
        let b = match chosen {
            Some((b, _)) => b,
            None => {
                bins.push(Resources::ZERO);
                bins.len() - 1
            }
        };
        bins[b] += *item;
        assignments[idx] = Some(b);
    }

    PackingOutcome {
        assignments,
        bins,
        unplaced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_support::host;

    fn mem(gib: u64) -> Resources {
        Resources::with_memory_gib(1, gib, 1)
    }

    fn cap(gib: u64) -> Resources {
        Resources::with_memory_gib(100, gib, 1000)
    }

    #[test]
    fn first_fit_takes_first_fitting_host() {
        let hosts = vec![
            host(0, cap(10), Resources::with_memory_gib(0, 9, 0)),
            host(1, cap(10), Resources::ZERO),
            host(2, cap(10), Resources::ZERO),
        ];
        let p = BinPacker::new(PackingStrategy::FirstFit, ResourceKind::Memory).unwrap();
        assert_eq!(p.choose(&mem(2), &hosts), Some(1));
        assert_eq!(p.choose(&mem(1), &hosts), Some(0));
    }

    #[test]
    fn best_fit_takes_tightest_host() {
        let hosts = vec![
            host(0, cap(10), Resources::with_memory_gib(0, 2, 0)), // 8 free
            host(1, cap(10), Resources::with_memory_gib(0, 7, 0)), // 3 free
            host(2, cap(10), Resources::with_memory_gib(0, 5, 0)), // 5 free
        ];
        let p = BinPacker::new(PackingStrategy::BestFit, ResourceKind::Memory).unwrap();
        assert_eq!(p.choose(&mem(3), &hosts), Some(1));
        assert_eq!(p.choose(&mem(4), &hosts), Some(2));
    }

    #[test]
    fn worst_fit_takes_roomiest_host() {
        let hosts = vec![
            host(0, cap(10), Resources::with_memory_gib(0, 2, 0)),
            host(1, cap(10), Resources::with_memory_gib(0, 7, 0)),
        ];
        let p = BinPacker::new(PackingStrategy::WorstFit, ResourceKind::Memory).unwrap();
        assert_eq!(p.choose(&mem(1), &hosts), Some(0));
    }

    #[test]
    fn disabled_and_unfitting_hosts_are_skipped() {
        let mut h0 = host(0, cap(10), Resources::ZERO);
        h0.enabled = false;
        let hosts = vec![h0, host(1, cap(2), Resources::ZERO)];
        let p = BinPacker::new(PackingStrategy::FirstFit, ResourceKind::Memory).unwrap();
        assert_eq!(p.choose(&mem(5), &hosts), None);
        assert_eq!(p.choose(&mem(2), &hosts), Some(1));
    }

    #[test]
    fn online_packer_rejects_decreasing() {
        for strategy in [
            PackingStrategy::FirstFitDecreasing,
            PackingStrategy::BestFitDecreasing,
        ] {
            let err = BinPacker::new(strategy, ResourceKind::Memory).unwrap_err();
            assert_eq!(err, OfflineStrategyError(strategy));
            assert!(err.to_string().contains("offline"), "{err}");
        }
    }

    #[test]
    fn pack_all_first_fit_classic_example() {
        // Items 6,5,4,3,2 into bins of 10. FF walks: 6→b0; 5 doesn't fit
        // b0 (4 free) → b1; 4 fits b0 exactly → b0; 3→b1 (5+3=8);
        // 2→b1 (8+2=10). Two perfectly full bins.
        let items: Vec<Resources> = [6, 5, 4, 3, 2].iter().map(|&g| mem(g)).collect();
        let out = pack_all(
            &items,
            cap(10),
            PackingStrategy::FirstFit,
            ResourceKind::Memory,
        );
        assert_eq!(out.bin_count(), 2);
        assert_eq!(out.unplaced, 0);
        assert_eq!(
            out.assignments,
            vec![Some(0), Some(1), Some(0), Some(1), Some(1)]
        );
    }

    #[test]
    fn ffd_beats_ff_on_adversarial_input() {
        // Items 4,4,4,6,6,6 into bins of 10. FF in arrival order wastes
        // space: [4,4],[4,6],[6],[6] = 4 bins. FFD sorts to 6,6,6,4,4,4 and
        // pairs them: [6,4]×3 = 3 bins.
        let items: Vec<Resources> = [4, 4, 4, 6, 6, 6].iter().map(|&g| mem(g)).collect();
        let ff = pack_all(
            &items,
            cap(10),
            PackingStrategy::FirstFit,
            ResourceKind::Memory,
        );
        let ffd = pack_all(
            &items,
            cap(10),
            PackingStrategy::FirstFitDecreasing,
            ResourceKind::Memory,
        );
        assert_eq!(ff.bin_count(), 4);
        assert_eq!(ffd.bin_count(), 3, "perfect packing: 6+4 per bin");
        assert_eq!(ffd.unplaced, 0);
    }

    #[test]
    fn oversized_items_are_reported_unplaced() {
        let items = vec![mem(20), mem(5)];
        let out = pack_all(
            &items,
            cap(10),
            PackingStrategy::BestFit,
            ResourceKind::Memory,
        );
        assert_eq!(out.unplaced, 1);
        assert_eq!(out.assignments[0], None);
        assert_eq!(out.assignments[1], Some(0));
    }

    #[test]
    fn pack_all_respects_all_dimensions() {
        // Items fit on memory but exhaust CPU.
        let capacity = Resources::with_memory_gib(2, 100, 100);
        let items = vec![
            Resources::with_memory_gib(2, 1, 1),
            Resources::with_memory_gib(2, 1, 1),
        ];
        let out = pack_all(
            &items,
            capacity,
            PackingStrategy::FirstFit,
            ResourceKind::Memory,
        );
        assert_eq!(out.bin_count(), 2, "CPU forces a second bin");
    }

    #[test]
    fn bins_never_exceed_capacity() {
        let items: Vec<Resources> = (1..=30).map(|g| mem(g % 7 + 1)).collect();
        for strategy in PackingStrategy::ALL {
            let out = pack_all(&items, cap(10), strategy, ResourceKind::Memory);
            for bin in &out.bins {
                assert!(cap(10).fits(bin), "{strategy:?}: {bin}");
            }
            let placed = out.assignments.iter().flatten().count();
            assert_eq!(placed + out.unplaced, items.len());
        }
    }
}
