//! Weighers: score the candidates that survived filtering.
//!
//! Mirrors Nova's weigher stage (paper Figure 3): "weighers are used to
//! generate a score and rank the remaining hypervisors". As in Nova, each
//! weigher's raw scores are min-max normalized across the candidate set and
//! combined with a per-weigher multiplier; a *negative* multiplier flips a
//! spreading weigher into a packing one — exactly how the deployment in the
//! paper bin-packs HANA workloads while load-balancing everything else
//! (Section 3.2).

use crate::request::{HostView, PlacementRequest};

/// A placement weigher: higher raw score = more preferred (before the
/// multiplier is applied).
pub trait Weigher: Send + Sync {
    /// Short name for logs and stats.
    fn name(&self) -> &'static str;

    /// Raw (unnormalized) score of one candidate.
    fn weigh(&self, request: &PlacementRequest, host: &HostView) -> f64;
}

/// Prefers hosts with more free vCPUs (Nova's `CPUWeigher` with a positive
/// multiplier — the load-balancing default).
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuWeigher;

impl Weigher for CpuWeigher {
    fn name(&self) -> &'static str {
        "CPUWeigher"
    }

    fn weigh(&self, _request: &PlacementRequest, host: &HostView) -> f64 {
        host.free().cpu_cores as f64
    }
}

/// Prefers hosts with more free memory (Nova's `RAMWeigher`).
#[derive(Debug, Default, Clone, Copy)]
pub struct RamWeigher;

impl Weigher for RamWeigher {
    fn name(&self) -> &'static str {
        "RAMWeigher"
    }

    fn weigh(&self, _request: &PlacementRequest, host: &HostView) -> f64 {
        host.free().memory_mib as f64
    }
}

/// Prefers hosts with more free disk (Nova's `DiskWeigher`).
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskWeigher;

impl Weigher for DiskWeigher {
    fn name(&self) -> &'static str {
        "DiskWeigher"
    }

    fn weigh(&self, _request: &PlacementRequest, host: &HostView) -> f64 {
        host.free().disk_gib as f64
    }
}

/// Penalizes hosts with recent CPU contention — the extension the paper
/// derives from its findings (Section 7: "enhancements to the initial
/// placement capabilities ... incorporating both current and historic
/// utilization data, for example the contention metrics").
///
/// The raw score is `-contention_pct`, so after normalization the
/// least-contended candidate scores highest. Used with a positive
/// multiplier.
#[derive(Debug, Default, Clone, Copy)]
pub struct ContentionWeigher;

impl Weigher for ContentionWeigher {
    fn name(&self) -> &'static str {
        "ContentionWeigher"
    }

    fn weigh(&self, _request: &PlacementRequest, host: &HostView) -> f64 {
        -host.contention_pct
    }
}

/// Prefers hosts whose resident VMs have a remaining lifetime similar to
/// the request's hint — the lifetime-aware extension (paper Section 7:
/// "placement strategies that incorporate workload lifetime can reduce
/// migrations and mitigate resource fragmentation"). Co-locating VMs that
/// will retire together lets whole nodes drain naturally.
///
/// Requests without a hint score every candidate equally.
#[derive(Debug, Default, Clone, Copy)]
pub struct LifetimeAffinityWeigher;

impl Weigher for LifetimeAffinityWeigher {
    fn name(&self) -> &'static str {
        "LifetimeAffinityWeigher"
    }

    fn weigh(&self, request: &PlacementRequest, host: &HostView) -> f64 {
        match request.lifetime_hint_days {
            None => 0.0,
            Some(hint) => {
                // Compare in log space: a 2-day VM next to a 4-day VM is
                // "similar"; next to a 2-year VM it is not. Hosts with no
                // residents yet are neutral targets (distance 0) so empty
                // hosts seed new lifetime cohorts.
                let resident = host.mean_remaining_lifetime_days;
                if resident <= 0.0 {
                    return 0.0;
                }
                let d = (hint.max(0.01).ln() - resident.max(0.01).ln()).abs();
                -d
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_support::host;
    use sapsim_topology::{BbPurpose, Resources};

    fn req() -> PlacementRequest {
        PlacementRequest::new(1, Resources::new(2, 2048, 10), BbPurpose::GeneralPurpose)
    }

    #[test]
    fn cpu_and_ram_weighers_score_free_capacity() {
        let roomy = host(0, Resources::new(100, 10_000, 100), Resources::ZERO);
        let tight = host(
            1,
            Resources::new(100, 10_000, 100),
            Resources::new(90, 9_000, 90),
        );
        assert!(CpuWeigher.weigh(&req(), &roomy) > CpuWeigher.weigh(&req(), &tight));
        assert!(RamWeigher.weigh(&req(), &roomy) > RamWeigher.weigh(&req(), &tight));
        assert!(DiskWeigher.weigh(&req(), &roomy) > DiskWeigher.weigh(&req(), &tight));
    }

    #[test]
    fn contention_weigher_prefers_quiet_hosts() {
        let mut quiet = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        let mut noisy = quiet;
        quiet.contention_pct = 1.0;
        noisy.contention_pct = 35.0;
        assert!(ContentionWeigher.weigh(&req(), &quiet) > ContentionWeigher.weigh(&req(), &noisy));
    }

    #[test]
    fn lifetime_weigher_without_hint_is_neutral() {
        let mut a = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        a.mean_remaining_lifetime_days = 100.0;
        let mut b = a;
        b.mean_remaining_lifetime_days = 1.0;
        assert_eq!(
            LifetimeAffinityWeigher.weigh(&req(), &a),
            LifetimeAffinityWeigher.weigh(&req(), &b)
        );
    }

    #[test]
    fn lifetime_weigher_prefers_similar_cohorts() {
        let r = req().with_lifetime_hint(2.0);
        let mut similar = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        similar.mean_remaining_lifetime_days = 3.0;
        let mut dissimilar = similar;
        dissimilar.mean_remaining_lifetime_days = 700.0;
        assert!(
            LifetimeAffinityWeigher.weigh(&r, &similar)
                > LifetimeAffinityWeigher.weigh(&r, &dissimilar)
        );
    }

    #[test]
    fn lifetime_weigher_is_symmetric_in_log_space() {
        let r = req().with_lifetime_hint(10.0);
        let mut shorter = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        shorter.mean_remaining_lifetime_days = 5.0;
        let mut longer = shorter;
        longer.mean_remaining_lifetime_days = 20.0;
        let a = LifetimeAffinityWeigher.weigh(&r, &shorter);
        let b = LifetimeAffinityWeigher.weigh(&r, &longer);
        assert!((a - b).abs() < 1e-12, "2x in either direction is equal");
    }

    #[test]
    fn empty_hosts_are_neutral_lifetime_targets() {
        let r = req().with_lifetime_hint(2.0);
        let empty = host(0, Resources::new(10, 10, 10), Resources::ZERO);
        assert_eq!(LifetimeAffinityWeigher.weigh(&r, &empty), 0.0);
    }
}
