//! Preset placement policies.
//!
//! The deployment in the paper runs a *mixed* strategy (Section 3.2): "The
//! default strategy aims to load-balance general-purpose workloads, whereas
//! SAP S/4HANA workloads are explicitly bin-packed to maximize memory
//! utilization." [`PolicyKind::PaperDefault`] reproduces that; the other
//! kinds are the baselines and extensions the evaluation compares.

use crate::filter::{
    AvailabilityZoneFilter, ComputeFilter, ComputeStatusFilter, DiskFilter, Filter, PurposeFilter,
    RamFilter,
};
use crate::pipeline::{FilterScheduler, PipelineStats, RankOptions, Ranking, ScheduleError};
use crate::request::{HostView, PlacementRequest};
use crate::weigher::{ContentionWeigher, CpuWeigher, LifetimeAffinityWeigher, RamWeigher, Weigher};
use sapsim_topology::BbPurpose;
use serde::{Deserialize, Serialize};

/// Which placement strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Load-balance everything (CPU + RAM spreading weighers) — vanilla
    /// Nova defaults.
    Spread,
    /// Bin-pack everything on memory (negative RAM multiplier).
    PackMemory,
    /// The paper's production configuration: spread general-purpose
    /// workloads, bin-pack HANA on memory.
    PaperDefault,
    /// `PaperDefault` plus a contention-penalty weigher on the
    /// general-purpose pipeline (Section 7 extension).
    ContentionAware,
    /// `PaperDefault` plus lifetime-affinity weighing on the
    /// general-purpose pipeline (Section 7 extension).
    LifetimeAware,
}

impl PolicyKind {
    /// All policy kinds, in ablation order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Spread,
        PolicyKind::PackMemory,
        PolicyKind::PaperDefault,
        PolicyKind::ContentionAware,
        PolicyKind::LifetimeAware,
    ];

    /// Stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::Spread => "spread",
            PolicyKind::PackMemory => "pack-memory",
            PolicyKind::PaperDefault => "paper-default",
            PolicyKind::ContentionAware => "contention-aware",
            PolicyKind::LifetimeAware => "lifetime-aware",
        }
    }

    /// Inverse of [`PolicyKind::name`]: resolve a stable kebab-case name
    /// (as used by the CLI `--policy` flag and sweep manifests) back to
    /// its kind. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    /// Typed spelling of [`PolicyKind::from_name`]; the error message is
    /// the exact string the CLI prints for `--policy`, so both paths stay
    /// pinned by one contract.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::from_name(s).ok_or_else(|| format!("unknown policy `{s}`"))
    }
}

fn standard_filters() -> Vec<Box<dyn Filter>> {
    vec![
        Box::new(ComputeStatusFilter),
        Box::new(AvailabilityZoneFilter),
        Box::new(PurposeFilter),
        Box::new(ComputeFilter),
        Box::new(RamFilter),
        Box::new(DiskFilter),
    ]
}

fn spread_weighers() -> Vec<(f64, Box<dyn Weigher>)> {
    vec![
        (1.0, Box::new(CpuWeigher) as Box<dyn Weigher>),
        (1.0, Box::new(RamWeigher)),
    ]
}

fn pack_memory_weighers() -> Vec<(f64, Box<dyn Weigher>)> {
    vec![(-2.0, Box::new(RamWeigher) as Box<dyn Weigher>)]
}

/// A ready-to-run placement policy: one pipeline for general-purpose
/// requests and one for HANA requests, dispatched on the request's
/// building-block purpose.
#[derive(Debug)]
pub struct PlacementPolicy {
    kind: PolicyKind,
    general: FilterScheduler,
    hana: FilterScheduler,
}

impl PlacementPolicy {
    /// Build the pipelines for `kind`.
    pub fn new(kind: PolicyKind) -> Self {
        let general = match kind {
            PolicyKind::Spread => FilterScheduler::new(standard_filters(), spread_weighers()),
            PolicyKind::PackMemory => {
                FilterScheduler::new(standard_filters(), pack_memory_weighers())
            }
            PolicyKind::PaperDefault => FilterScheduler::new(standard_filters(), spread_weighers()),
            PolicyKind::ContentionAware => {
                let mut w = spread_weighers();
                // The contention signal outranks raw free capacity: a host
                // that looks free but is contended is exactly the trap the
                // paper observed.
                w.push((2.0, Box::new(ContentionWeigher)));
                FilterScheduler::new(standard_filters(), w)
            }
            PolicyKind::LifetimeAware => {
                let mut w = spread_weighers();
                w.push((1.5, Box::new(LifetimeAffinityWeigher)));
                FilterScheduler::new(standard_filters(), w)
            }
        };
        // HANA: always memory-bin-packed except under the pure Spread
        // baseline, which deliberately mis-handles it to expose the cost.
        let hana = match kind {
            PolicyKind::Spread => FilterScheduler::new(standard_filters(), spread_weighers()),
            _ => FilterScheduler::new(standard_filters(), pack_memory_weighers()),
        };
        PlacementPolicy {
            kind,
            general,
            hana,
        }
    }

    /// The policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Rank candidates for one request (best first), with the full
    /// per-filter and per-weigher audit detail. See
    /// [`FilterScheduler::rank`].
    pub fn rank(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
    ) -> Result<Ranking, ScheduleError> {
        match request.purpose {
            BbPurpose::Hana => self.hana.rank(request, hosts),
            _ => self.general.rank(request, hosts),
        }
    }

    /// The hot-path form of [`rank`](PlacementPolicy::rank): writes into a
    /// reusable [`Ranking`] and accepts [`RankOptions`] (candidate index,
    /// top-k head, stats gating). Dispatches on the request purpose
    /// exactly like `rank`. See [`FilterScheduler::rank_into`].
    pub fn rank_into(
        &mut self,
        request: &PlacementRequest,
        hosts: &[HostView],
        opts: RankOptions<'_>,
        out: &mut Ranking,
    ) -> Result<(), ScheduleError> {
        match request.purpose {
            BbPurpose::Hana => self.hana.rank_into(request, hosts, opts, out),
            _ => self.general.rank_into(request, hosts, opts, out),
        }
    }

    /// Combined pipeline statistics `(general, hana)`.
    pub fn stats(&self) -> (&PipelineStats, &PipelineStats) {
        (self.general.stats(), self.hana.stats())
    }

    /// Candidate-index prune counters `(general, hana)` — see
    /// [`IndexStats`](crate::IndexStats).
    pub fn index_stats(&self) -> (&crate::IndexStats, &crate::IndexStats) {
        (self.general.index_stats(), self.hana.index_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_support::host;
    use sapsim_topology::Resources;

    fn hosts_gradient() -> Vec<HostView> {
        // Host 0 fullest … host 3 emptiest.
        (0..4u32)
            .map(|i| {
                host(
                    i,
                    Resources::with_memory_gib(100, 1000, 1000),
                    Resources::with_memory_gib(80 - i * 20, 800 - i as u64 * 200, 0),
                )
            })
            .collect()
    }

    fn hana_hosts_gradient() -> Vec<HostView> {
        hosts_gradient()
            .into_iter()
            .map(|mut h| {
                h.purpose = BbPurpose::Hana;
                h
            })
            .collect()
    }

    #[test]
    fn paper_default_spreads_gp_and_packs_hana() {
        let mut p = PlacementPolicy::new(PolicyKind::PaperDefault);
        let gp = PlacementRequest::new(
            1,
            Resources::with_memory_gib(2, 8, 1),
            BbPurpose::GeneralPurpose,
        );
        let best_gp = p.rank(&gp, &hosts_gradient()).unwrap().best();
        assert_eq!(best_gp, 3, "GP goes to the emptiest host");

        let hana = PlacementRequest::new(2, Resources::with_memory_gib(2, 8, 1), BbPurpose::Hana);
        let best_hana = p.rank(&hana, &hana_hosts_gradient()).unwrap().best();
        assert_eq!(best_hana, 0, "HANA goes to the fullest fitting host");
    }

    #[test]
    fn spread_policy_spreads_hana_too() {
        let mut p = PlacementPolicy::new(PolicyKind::Spread);
        let hana = PlacementRequest::new(2, Resources::with_memory_gib(2, 8, 1), BbPurpose::Hana);
        let best = p.rank(&hana, &hana_hosts_gradient()).unwrap().best();
        assert_eq!(best, 3);
    }

    #[test]
    fn pack_memory_packs_gp_too() {
        let mut p = PlacementPolicy::new(PolicyKind::PackMemory);
        let gp = PlacementRequest::new(
            1,
            Resources::with_memory_gib(2, 8, 1),
            BbPurpose::GeneralPurpose,
        );
        let best = p.rank(&gp, &hosts_gradient()).unwrap().best();
        assert_eq!(best, 0);
    }

    #[test]
    fn contention_aware_avoids_contended_free_host() {
        let mut hosts = hosts_gradient();
        // Make the emptiest host heavily contended.
        hosts[3].contention_pct = 45.0;
        let mut p = PlacementPolicy::new(PolicyKind::ContentionAware);
        let gp = PlacementRequest::new(
            1,
            Resources::with_memory_gib(2, 8, 1),
            BbPurpose::GeneralPurpose,
        );
        let best = p.rank(&gp, &hosts).unwrap().best();
        assert_ne!(best, 3, "the contended host loses despite being emptiest");
        assert_eq!(best, 2, "the next-emptiest quiet host wins");
    }

    #[test]
    fn lifetime_aware_colocates_similar_lifetimes() {
        let mut hosts = hosts_gradient();
        // Two equally-free hosts; one hosts a short-lived cohort.
        hosts[2].allocated = hosts[3].allocated;
        hosts[2].mean_remaining_lifetime_days = 1.5;
        hosts[3].mean_remaining_lifetime_days = 600.0;
        let mut p = PlacementPolicy::new(PolicyKind::LifetimeAware);
        let gp = PlacementRequest::new(
            1,
            Resources::with_memory_gib(2, 8, 1),
            BbPurpose::GeneralPurpose,
        )
        .with_lifetime_hint(1.0);
        let best = p.rank(&gp, &hosts).unwrap().best();
        assert_eq!(best, 2, "short-lived VM joins the short-lived cohort");
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<_> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "spread",
                "pack-memory",
                "paper-default",
                "contention-aware",
                "lifetime-aware"
            ]
        );
    }

    #[test]
    fn from_name_inverts_name() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::from_name("Spread"), None);
        assert_eq!(PolicyKind::from_name(""), None);
        for kind in PolicyKind::ALL {
            assert_eq!(kind.to_string().parse::<PolicyKind>(), Ok(kind));
        }
        assert_eq!(
            "nope".parse::<PolicyKind>(),
            Err("unknown policy `nope`".to_string())
        );
    }

    #[test]
    fn stats_split_by_pipeline() {
        let mut p = PlacementPolicy::new(PolicyKind::PaperDefault);
        let gp = PlacementRequest::new(
            1,
            Resources::with_memory_gib(2, 8, 1),
            BbPurpose::GeneralPurpose,
        );
        let hana = PlacementRequest::new(2, Resources::with_memory_gib(2, 8, 1), BbPurpose::Hana);
        p.rank(&gp, &hosts_gradient()).unwrap();
        p.rank(&hana, &hana_hosts_gradient()).unwrap();
        p.rank(&hana, &hana_hosts_gradient()).unwrap();
        let (g, h) = p.stats();
        assert_eq!(g.requests, 1);
        assert_eq!(h.requests, 2);
    }
}
