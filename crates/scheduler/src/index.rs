//! Purpose×AZ-partitioned candidate index.
//!
//! Host purpose and availability zone never change at runtime, so hosts
//! partition statically into buckets keyed by `(purpose, az)`. A request
//! pins a purpose and (optionally) an AZ, which makes whole buckets
//! infeasible at once: the filter stage only walks the feasible buckets
//! and attributes every pruned host to the exact [`RejectReason`] the
//! full filter chain would have emitted (see
//! [`FilterScheduler::rank_into`](crate::FilterScheduler::rank_into)).
//! Only the `enabled` flag of a host varies over time; the index tracks a
//! per-bucket disabled count so pruned-bucket rejection attribution stays
//! exact without touching the views.

use crate::request::HostView;
use sapsim_topology::{AzId, BbPurpose};

/// One static partition of the host slice: every host sharing a
/// `(purpose, az)` pair, in ascending host order.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Reservation class shared by every host in the bucket.
    pub purpose: BbPurpose,
    /// Availability zone shared by every host in the bucket.
    pub az: AzId,
    /// Indices into the host slice the index was built from, ascending.
    pub hosts: Vec<u32>,
    /// How many of `hosts` are currently disabled (`!enabled`).
    pub disabled: u32,
}

/// The purpose×AZ candidate index over one host slice.
///
/// Built once from a freshly constructed view slice; afterwards only
/// [`set_enabled`](CandidateIndex::set_enabled) mutations are needed,
/// because purpose, AZ, and the host count are fixed for the lifetime of
/// a topology.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    buckets: Vec<Bucket>,
    /// Mirror of each host's `enabled` flag, making `set_enabled`
    /// idempotent.
    enabled: Vec<bool>,
    /// Owning bucket of each host.
    bucket_of: Vec<u32>,
}

impl CandidateIndex {
    /// Partition `hosts` by `(purpose, az)`. Bucket order is first
    /// appearance, host order within a bucket is ascending — both
    /// deterministic functions of the input slice.
    pub fn build(hosts: &[HostView]) -> Self {
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut enabled = Vec::with_capacity(hosts.len());
        let mut bucket_of = Vec::with_capacity(hosts.len());
        for (i, h) in hosts.iter().enumerate() {
            enabled.push(h.enabled);
            let pos = match buckets
                .iter()
                .position(|b| b.purpose == h.purpose && b.az == h.az)
            {
                Some(p) => p,
                None => {
                    buckets.push(Bucket {
                        purpose: h.purpose,
                        az: h.az,
                        hosts: Vec::new(),
                        disabled: 0,
                    });
                    buckets.len() - 1
                }
            };
            bucket_of.push(pos as u32);
            buckets[pos].hosts.push(i as u32);
            if !h.enabled {
                buckets[pos].disabled += 1;
            }
        }
        CandidateIndex {
            buckets,
            enabled,
            bucket_of,
        }
    }

    /// Number of hosts covered by the index.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// True when the index covers no hosts.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// The partitions, in first-appearance order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Record a change of `host`'s enabled flag, keeping the owning
    /// bucket's disabled count exact. Idempotent: re-reporting the
    /// current state is a no-op.
    pub fn set_enabled(&mut self, host: usize, now_enabled: bool) {
        if self.enabled[host] == now_enabled {
            return;
        }
        self.enabled[host] = now_enabled;
        let bucket = &mut self.buckets[self.bucket_of[host] as usize];
        if now_enabled {
            bucket.disabled -= 1;
        } else {
            bucket.disabled += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_support::host;
    use sapsim_topology::Resources;

    fn mixed_hosts() -> Vec<HostView> {
        // Interleave two AZs and two purposes so buckets are non-trivial:
        // az = i % 2, purpose = Hana for i in {4, 5}.
        (0..6u32)
            .map(|i| {
                let mut h = host(i, Resources::new(10, 100, 100), Resources::ZERO);
                h.az = AzId::from_raw(i % 2);
                if i >= 4 {
                    h.purpose = BbPurpose::Hana;
                }
                h
            })
            .collect()
    }

    #[test]
    fn buckets_partition_every_host_exactly_once() {
        let hosts = mixed_hosts();
        let index = CandidateIndex::build(&hosts);
        assert_eq!(index.len(), hosts.len());
        let mut seen: Vec<u32> = index
            .buckets()
            .iter()
            .flat_map(|b| b.hosts.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..hosts.len() as u32).collect::<Vec<_>>());
        for b in index.buckets() {
            assert!(b.hosts.windows(2).all(|w| w[0] < w[1]), "ascending order");
            for &i in &b.hosts {
                let h = &hosts[i as usize];
                assert_eq!((h.purpose, h.az), (b.purpose, b.az));
            }
        }
        // 2 GP AZs + 2 HANA AZs.
        assert_eq!(index.buckets().len(), 4);
    }

    #[test]
    fn disabled_counts_follow_set_enabled_idempotently() {
        let mut hosts = mixed_hosts();
        hosts[0].enabled = false;
        let mut index = CandidateIndex::build(&hosts);
        let count =
            |idx: &CandidateIndex| -> u32 { idx.buckets().iter().map(|b| b.disabled).sum() };
        assert_eq!(count(&index), 1);
        index.set_enabled(0, false); // no-op: already disabled
        assert_eq!(count(&index), 1);
        index.set_enabled(3, false);
        assert_eq!(count(&index), 2);
        index.set_enabled(0, true);
        index.set_enabled(3, true);
        assert_eq!(count(&index), 0);
    }
}
