//! Property-based tests on the scheduling core: whatever the candidate
//! set looks like, the pipeline's outputs obey its contracts.

use proptest::prelude::*;
use sapsim_scheduler::{
    default_filters, pack_all, CpuWeigher, FilterScheduler, HostLoad, HostView, PackingStrategy,
    PlacementRequest, RamWeigher, Rebalancer, VmLoad, Weigher,
};
use sapsim_topology::{AzId, BbId, BbPurpose, NodeId, ResourceKind, Resources};

fn arb_host(i: u32) -> impl Strategy<Value = HostView> {
    (
        0u32..512,
        0u64..1_048_576,
        0u64..10_000,
        any::<bool>(),
        0.0f64..50.0,
    )
        .prop_map(move |(alloc_cpu, alloc_mem, alloc_disk, enabled, contention)| {
            let capacity = Resources::new(512, 1_048_576, 10_000);
            HostView {
                bb: BbId::from_raw(i),
                node: None,
                purpose: BbPurpose::GeneralPurpose,
                az: AzId::from_raw(i % 3),
                capacity,
                allocated: Resources::new(alloc_cpu, alloc_mem, alloc_disk),
                enabled,
                contention_pct: contention,
                mean_remaining_lifetime_days: 0.0,
            }
        })
}

fn arb_hosts(max: usize) -> impl Strategy<Value = Vec<HostView>> {
    prop::collection::vec(any::<u8>(), 1..max).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_host(i as u32))
            .collect::<Vec<_>>()
    })
}

fn spread() -> FilterScheduler {
    FilterScheduler::new(
        default_filters(),
        vec![
            (1.0, Box::new(CpuWeigher) as Box<dyn Weigher>),
            (1.0, Box::new(RamWeigher)),
        ],
    )
}

proptest! {
    /// Every ranked candidate fits the request and is enabled; the ranking
    /// is a permutation of exactly the feasible set.
    #[test]
    fn ranking_returns_exactly_the_feasible_set(
        hosts in arb_hosts(40),
        cpu in 1u32..256,
        mem in 1u64..524_288,
    ) {
        let request = PlacementRequest::new(
            1,
            Resources::new(cpu, mem, 100),
            BbPurpose::GeneralPurpose,
        );
        let mut scheduler = spread();
        let feasible: Vec<usize> = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.enabled && h.fits(&request.resources))
            .map(|(i, _)| i)
            .collect();
        match scheduler.rank(&request, &hosts) {
            Ok(ranked) => {
                let mut sorted = ranked.order.clone();
                sorted.sort_unstable();
                prop_assert_eq!(sorted, feasible);
                prop_assert_eq!(ranked.candidates, hosts.len());
                let eliminated: u32 = ranked.rejections.iter().map(|&(_, n)| n).sum();
                prop_assert_eq!(
                    eliminated as usize + ranked.order.len(),
                    hosts.len(),
                    "every candidate is either ranked or accounted for"
                );
            }
            Err(_) => prop_assert!(feasible.is_empty()),
        }
    }

    /// Ranking is deterministic.
    #[test]
    fn ranking_is_deterministic(hosts in arb_hosts(30)) {
        let request = PlacementRequest::new(
            1,
            Resources::new(8, 8192, 50),
            BbPurpose::GeneralPurpose,
        );
        let r1 = spread().rank(&request, &hosts);
        let r2 = spread().rank(&request, &hosts);
        prop_assert_eq!(r1.ok(), r2.ok());
    }

    /// pack_all never overfills a bin, never loses an item, and the
    /// decreasing variant never opens more bins than the plain one.
    #[test]
    fn packing_invariants(
        sizes in prop::collection::vec(1u64..512, 1..120),
    ) {
        let items: Vec<Resources> = sizes
            .iter()
            .map(|&g| Resources::with_memory_gib(1, g, 1))
            .collect();
        let capacity = Resources::with_memory_gib(256, 512, 10_000);
        let ff = pack_all(&items, capacity, PackingStrategy::FirstFit, ResourceKind::Memory);
        let ffd = pack_all(
            &items,
            capacity,
            PackingStrategy::FirstFitDecreasing,
            ResourceKind::Memory,
        );
        for out in [&ff, &ffd] {
            for bin in &out.bins {
                prop_assert!(capacity.fits(bin));
            }
            let placed = out.assignments.iter().flatten().count();
            prop_assert_eq!(placed + out.unplaced, items.len());
            prop_assert_eq!(out.unplaced, 0, "all items fit an empty bin here");
        }
        prop_assert!(ffd.bin_count() <= ff.bin_count());
        // Lower bound: total size / capacity.
        let total: u64 = sizes.iter().sum();
        let lower = total.div_ceil(512) as usize;
        prop_assert!(ffd.bin_count() >= lower);
        prop_assert!(ff.bin_count() <= 2 * lower + 1, "FF is 2-approximate-ish");
    }

    /// The DRS planner never increases the utilization gap, never moves a
    /// pinned VM, and never exceeds its migration budget.
    #[test]
    fn drs_plan_invariants(
        demands in prop::collection::vec(
            prop::collection::vec((0.0f64..4.0, any::<bool>()), 0..20),
            2..12,
        ),
    ) {
        let loads: Vec<HostLoad<NodeId>> = demands
            .iter()
            .enumerate()
            .map(|(i, vms)| HostLoad {
                id: NodeId::from_raw(i as u32),
                cpu_capacity: 48.0,
                mem_capacity_mib: 768.0 * 1024.0,
                vms: vms
                    .iter()
                    .enumerate()
                    .map(|(j, &(demand, movable))| VmLoad {
                        vm_uid: (i * 1000 + j) as u64,
                        cpu_demand: demand,
                        mem_used_mib: 1024.0,
                        movable,
                    })
                    .collect(),
            })
            .collect();
        let planner = Rebalancer::default();
        let report = planner.plan(&loads);
        prop_assert!(report.gap_after <= report.gap_before + 1e-9);
        prop_assert!(report.migrations.len() <= planner.config().max_migrations);
        for m in &report.migrations {
            let host = m.from.index();
            let vm = loads[host]
                .vms
                .iter()
                .find(|v| v.vm_uid == m.vm_uid)
                .expect("migrated VM came from its claimed source");
            prop_assert!(vm.movable, "pinned VMs never move");
            prop_assert!(m.from != m.to);
        }
    }
}
