//! Reproducible random number streams.
//!
//! Everything stochastic in the simulator — workload demand curves, VM
//! arrival times, lifetime draws, scheduler tie-breaking — flows through
//! [`SimRng`]. The type owns a fixed, self-contained algorithm
//! (xoshiro256++ seeded through a SplitMix64 stream) so that results do
//! not change under `rand`'s `SmallRng`/`StdRng` portability caveats, and
//! adds *labelled stream splitting*: deriving a child RNG from a parent
//! plus a string label yields a stream that is statistically independent
//! of, and stable with respect to, every other label. Adding a new
//! consumer of randomness in one subsystem therefore never perturbs the
//! draws seen by another — a property the calibration tests rely on.
//!
//! The generator state is four plain `u64` words and serializes with
//! serde, which is what makes full-run snapshots possible: a restored
//! stream continues bit-for-bit where the captured one stopped. (The
//! previous `StdRng`/ChaCha12 inner kept its counter private and could
//! not be captured.)

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A deterministic random number generator with labelled stream splitting.
///
/// ```
/// use sapsim_sim::SimRng;
/// use rand::Rng;
///
/// let mut root = SimRng::seed_from(42);
/// let mut workload = root.split("workload");
/// let mut scheduler = root.split("scheduler");
/// // Streams are independent and reproducible:
/// let a: u64 = workload.gen();
/// let b: u64 = SimRng::seed_from(42).split("workload").gen();
/// assert_eq!(a, b);
/// let c: u64 = scheduler.gen();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    /// xoshiro256++ state words. Fully public to serde (and only serde):
    /// serializing and deserializing a stream resumes it mid-sequence,
    /// the property the snapshot/restore layer is built on.
    state: [u64; 4],
    /// The seed material this stream was created from, kept so that `split`
    /// derives children from the stream identity rather than its mutable
    /// state (splitting is insensitive to how many draws happened before).
    lineage: u64,
}

impl SimRng {
    /// Create a root stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mixed = splitmix64(seed);
        SimRng {
            state: seed_state(mixed),
            lineage: mixed,
        }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Children are a function of the parent's *identity* (its seed lineage)
    /// and the label only — not of how many values the parent has produced.
    pub fn split(&self, label: &str) -> SimRng {
        let child = splitmix64(self.lineage ^ fnv1a(label.as_bytes()));
        SimRng {
            state: seed_state(child),
            lineage: child,
        }
    }

    /// Derive an independent child stream identified by an integer index
    /// (for per-VM or per-node streams where formatting a label string per
    /// entity would be wasteful).
    pub fn split_index(&self, index: u64) -> SimRng {
        // Mix the index through splitmix so that consecutive indices land far
        // apart in seed space.
        let child = splitmix64(self.lineage ^ splitmix64(index ^ 0x9e37_79b9_7f4a_7c15));
        SimRng {
            state: seed_state(child),
            lineage: child,
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        // Upper half: xoshiro's low bits are its weakest.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Expand a 64-bit seed into a full xoshiro state through the canonical
/// SplitMix64 stream (the seeding procedure the xoshiro authors
/// recommend). SplitMix64 is a bijection-based counter generator, so the
/// four words can never all be zero in practice; the guard below makes
/// the all-zero fixed point impossible even in principle.
fn seed_state(seed: u64) -> [u64; 4] {
    let mut counter = seed;
    let mut state = [0u64; 4];
    for word in &mut state {
        counter = counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        *word = mix64(counter);
    }
    if state == [0; 4] {
        state[0] = 0x9e37_79b9_7f4a_7c15;
    }
    state
}

/// SplitMix64 finalizer; used only for seed derivation, never for the
/// simulation's random draws themselves.
fn splitmix64(z: u64) -> u64 {
    mix64(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

/// The SplitMix64 output mixing function (no counter increment).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; folds a label into the seed lineage.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_insensitive_to_parent_draws() {
        let mut parent1 = SimRng::seed_from(99);
        let parent2 = SimRng::seed_from(99);
        // Burn some draws on parent1 only.
        for _ in 0..10 {
            parent1.next_u64();
        }
        let mut c1 = parent1.split("child");
        let mut c2 = parent2.split("child");
        for _ in 0..20 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn split_labels_are_independent() {
        let root = SimRng::seed_from(1);
        let mut a = root.split("alpha");
        let mut b = root.split("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_index_streams_are_distinct_and_stable() {
        let root = SimRng::seed_from(5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let mut child = root.split_index(i);
            assert!(seen.insert(child.next_u64()), "collision at index {i}");
        }
        // Stability.
        assert_eq!(
            root.split_index(42).next_u64(),
            SimRng::seed_from(5).split_index(42).next_u64()
        );
    }

    #[test]
    fn nested_splits_compose() {
        let root = SimRng::seed_from(3);
        let mut a = root.split("x").split("y");
        let mut b = SimRng::seed_from(3).split("x").split("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = root.split("y").split("x");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_usable_through_rng_trait() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity_of_bits() {
        // Sanity check: bit 0 of next_u64 should be ~50% set.
        let mut rng = SimRng::seed_from(123);
        let ones = (0..10_000).filter(|_| rng.next_u64() & 1 == 1).count();
        assert!((4500..5500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Known-answer test against the reference xoshiro256++
        // implementation with state {1, 2, 3, 4}: pins the generator so a
        // refactor can never silently change every stream in the
        // simulator (which would invalidate cross-version snapshots).
        let mut rng = SimRng {
            state: [1, 2, 3, 4],
            lineage: 0,
        };
        let expect: [u64; 5] = [
            0x0000_0000_0280_0001,
            0x0000_0000_0380_0067,
            0x000c_c000_0380_0067,
            0x000c_c201_9944_00b2,
            0x8012_a201_9ac4_33cd,
        ];
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "draw {i}");
        }
    }

    #[test]
    fn serde_round_trip_resumes_mid_stream() {
        // The property the snapshot layer is built on: serialize at an
        // arbitrary point, deserialize, and the restored stream produces
        // exactly the continuation — while the original keeps advancing
        // independently (no shared state).
        let mut rng = SimRng::seed_from(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let frozen = serde_json::to_string(&rng).expect("serializes");
        let mut restored: SimRng = serde_json::from_str(&frozen).expect("parses");
        assert_eq!(restored, rng);
        let expect: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let got: Vec<u64> = (0..32).map(|_| restored.next_u64()).collect();
        assert_eq!(got, expect);
        // Splitting still derives from lineage after a round trip.
        assert_eq!(
            restored.split("child").next_u64(),
            SimRng::seed_from(77).split("child").next_u64()
        );
    }

    #[test]
    fn fill_bytes_matches_next_u64_le() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let mut expect = [0u8; 20];
        expect[..8].copy_from_slice(&b.next_u64().to_le_bytes());
        expect[8..16].copy_from_slice(&b.next_u64().to_le_bytes());
        expect[16..].copy_from_slice(&b.next_u64().to_le_bytes()[..4]);
        assert_eq!(buf, expect);
    }
}
