//! Deterministic fan-out over disjoint slices.
//!
//! The telemetry scrape in `sapsim-core` is a *map* over per-VM state: each
//! VM advances its own demand model on its own split-off [`SimRng`](crate::SimRng)
//! stream, independent of every other VM. That makes the hot loop
//! embarrassingly parallel — provided the parallelism never changes *what*
//! is computed, only *where*. The helpers here guarantee exactly that:
//!
//! * Work is partitioned into contiguous chunks at fixed offsets, so every
//!   element is visited exactly once by exactly one worker, with the same
//!   chunk boundaries for a given `(len, threads)` pair.
//! * Workers write only into their own disjoint sub-slices; there is no
//!   shared mutable state, no locks, and no reduction inside the fan-out.
//!   Any cross-element reduction happens afterwards, in index order, on the
//!   caller's thread.
//!
//! Together these give the determinism contract the simulator relies on:
//! **results are bit-identical at any thread count**, including the
//! sequential fallback. The implementation uses `std::thread::scope` only —
//! no external thread-pool dependency — and the `parallel` cargo feature
//! gates whether more than one worker is ever used. Without the feature
//! every call degenerates to a plain sequential loop.

/// Resolve how many workers a fan-out over `work_items` elements should use.
///
/// `requested` follows the [`SimConfig::threads`] convention of
/// `sapsim-core`: `0` means "one worker per available CPU", any other value
/// is used as given. The result is clamped to `[1, work_items]` (an empty
/// slice still gets one worker so the closure observes the call).
///
/// Without the `parallel` feature this always returns 1.
#[cfg(feature = "parallel")]
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    requested.clamp(1, work_items.max(1))
}

/// Sequential fallback: the `parallel` feature is disabled, so every
/// fan-out uses a single worker regardless of the request.
#[cfg(not(feature = "parallel"))]
pub fn effective_threads(_requested: usize, _work_items: usize) -> usize {
    1
}

/// Apply `f` to paired contiguous chunks of two equal-length slices,
/// fanning the chunks out over up to `threads` scoped worker threads.
///
/// The closure receives `(offset, a_chunk, b_chunk)` where `offset` is the
/// starting index of the chunk pair in the original slices; `a_chunk` and
/// `b_chunk` always have equal lengths and cover `a[offset..offset + n]` /
/// `b[offset..offset + n]`. Chunk boundaries depend only on `a.len()` and
/// the resolved worker count — and because workers touch disjoint ranges
/// and perform no shared reduction, the outcome is identical for *any*
/// worker count. `threads` follows the convention of
/// [`effective_threads`]; pass `1` to force the sequential path.
///
/// # Panics
/// Panics if the slices have different lengths.
///
/// ```
/// use sapsim_sim::par::join_chunks2;
///
/// let mut acc = vec![0u64; 1000];
/// let mut aux = vec![0u64; 1000];
/// join_chunks2(&mut acc, &mut aux, 4, |offset, a, b| {
///     for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
///         *x = (offset + i) as u64;
///         *y = *x * 2;
///     }
/// });
/// assert_eq!(acc[999], 999);
/// assert_eq!(aux[999], 1998);
/// ```
pub fn join_chunks2<A, B, F>(a: &mut [A], b: &mut [B], threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "join_chunks2 requires equal-length slices"
    );
    let workers = effective_threads(threads, a.len());
    if workers <= 1 {
        f(0, a, b);
        return;
    }
    fan_out(a, b, workers, &f);
}

/// The threaded body of [`join_chunks2`]; only compiled with the
/// `parallel` feature (the sequential build never reaches it).
#[cfg(feature = "parallel")]
fn fan_out<A, B, F>(a: &mut [A], b: &mut [B], workers: usize, f: &F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    let chunk = a.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest_a = a;
        let mut rest_b = b;
        let mut offset = 0usize;
        while !rest_a.is_empty() {
            let take = chunk.min(rest_a.len());
            let (head_a, tail_a) = rest_a.split_at_mut(take);
            let (head_b, tail_b) = rest_b.split_at_mut(take);
            rest_a = tail_a;
            rest_b = tail_b;
            let at = offset;
            scope.spawn(move || f(at, head_a, head_b));
            offset += take;
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn fan_out<A, B, F>(a: &mut [A], b: &mut [B], _workers: usize, f: &F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    f(0, a, b);
}

/// Run `f(index, item)` once for every element of `items`, fanning
/// contiguous chunks out over up to `workers` scoped threads.
///
/// This is the shard-execution primitive of the spatially-partitioned
/// event loop in `sapsim-core`: each item is a self-contained sub-
/// simulation, each worker owns a disjoint contiguous chunk of them, and
/// there is no shared mutable state and no reduction inside the fan-out —
/// merging happens afterwards, in index order, on the caller's thread.
/// Chunk boundaries depend only on `(items.len(), workers)`, and `f`
/// receives the *global* index of each item, so which worker runs a shard
/// can never leak into results.
///
/// Unlike [`join_chunks2`] this helper is **always compiled**, with or
/// without the `parallel` cargo feature: that feature gates the scrape
/// fan-out *within* one simulation, while shard workers are requested
/// explicitly per run (`SimConfig::shard_threads`) and default to off.
/// `workers <= 1` (or a single item) degenerates to a plain sequential
/// loop on the calling thread.
///
/// ```
/// use sapsim_sim::par::run_each;
///
/// let mut totals = vec![0u64; 5];
/// run_each(&mut totals, 3, |i, t| *t = (i as u64 + 1) * 10);
/// assert_eq!(totals, vec![10, 20, 30, 40, 50]);
/// ```
pub fn run_each<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let at = offset;
            let f = &f;
            scope.spawn(move || {
                for (i, item) in head.iter_mut().enumerate() {
                    f(at + i, item);
                }
            });
            offset += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fill(len: usize, threads: usize) -> (Vec<u64>, Vec<u64>) {
        let mut a = vec![0u64; len];
        let mut b = vec![0u64; len];
        join_chunks2(&mut a, &mut b, threads, |offset, ca, cb| {
            for (i, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                let idx = (offset + i) as u64;
                *x = idx.wrapping_mul(2_654_435_761);
                *y = idx;
            }
        });
        (a, b)
    }

    #[test]
    fn every_element_visited_exactly_once() {
        for threads in [1usize, 2, 3, 8, 64] {
            let (a, b) = run_fill(1000, threads);
            for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(y, i as u64, "threads={threads}");
                assert_eq!(x, (i as u64).wrapping_mul(2_654_435_761));
            }
        }
    }

    #[test]
    fn results_identical_at_any_thread_count() {
        let baseline = run_fill(1237, 1);
        for threads in [0usize, 2, 5, 16] {
            assert_eq!(run_fill(1237, threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_slices() {
        let (a, _) = run_fill(0, 8);
        assert!(a.is_empty());
        let (a, b) = run_fill(1, 8);
        assert_eq!(a.len(), 1);
        assert_eq!(b[0], 0);
        let (_, b) = run_fill(3, 100);
        assert_eq!(b, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        join_chunks2(&mut a, &mut b, 2, |_, _, _| {});
    }

    #[test]
    fn run_each_visits_every_item_once_at_any_worker_count() {
        let baseline: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(31)).collect();
        for workers in [0usize, 1, 2, 3, 8, 97, 500] {
            let mut items = vec![0u64; 97];
            run_each(&mut items, workers, |i, item| {
                *item = (i as u64).wrapping_mul(31);
            });
            assert_eq!(items, baseline, "workers={workers}");
        }
        let mut empty: Vec<u64> = Vec::new();
        run_each(&mut empty, 8, |_, _| panic!("no items to visit"));
    }

    #[test]
    fn run_each_is_compiled_without_the_parallel_feature() {
        // The shard pool must not be gated like the scrape fan-out: a
        // default-features build still runs shards on real threads.
        let mut seen = vec![false; 16];
        run_each(&mut seen, 4, |_, s| *s = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn effective_threads_respects_bounds() {
        // A sequential request always resolves to one worker, with or
        // without the feature; explicit requests never exceed the work.
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert!(effective_threads(8, 4) <= 4);
        assert_eq!(effective_threads(8, 0), 1);
    }
}
