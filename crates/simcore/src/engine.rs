//! The simulation executor: owns the clock and the event queue and advances
//! virtual time monotonically.

use crate::queue::{EventHandle, EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};
use crate::wheel::WheelStats;
use serde::{Deserialize, Serialize};

/// An event that has fired, handed back to the caller for processing.
#[derive(Debug)]
pub struct FiredEvent<E> {
    /// The instant at which the event fired (== the clock when it was
    /// returned).
    pub time: SimTime,
    /// The handle the event was scheduled under.
    pub handle: EventHandle,
    /// Caller-defined payload.
    pub payload: E,
}

/// Counters describing an executed simulation. Serializable because they
/// are part of the mutable state a snapshot must carry: a restored run
/// continues the counters exactly where the captured one stood.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationStats {
    /// Events that fired (returned by `next_event`).
    pub fired: u64,
    /// Events scheduled in total.
    pub scheduled: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
}

/// A discrete-event simulation: a virtual clock plus a pending-event set.
///
/// The engine is intentionally *inside-out*: rather than owning handler
/// callbacks (which would force `dyn` dispatch and fight the borrow checker
/// for access to the world state), [`Simulation::next_event`] hands each
/// event back to the caller, who dispatches on the payload with full mutable
/// access to their own state and schedules follow-up events. This mirrors
/// the poll-based design of event-driven network stacks.
///
/// ```
/// use sapsim_sim::{Simulation, SimDuration, SimTime};
///
/// let mut sim: Simulation<&str> = Simulation::new();
/// sim.schedule_at(SimTime::from_secs(10), "hello");
/// let ev = sim.next_event().unwrap();
/// assert_eq!(ev.payload, "hello");
/// assert_eq!(sim.now(), SimTime::from_secs(10));
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    stats: SimulationStats,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Create a simulation with the clock at [`SimTime::ZERO`], on the
    /// default (timing-wheel) event queue.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Create a simulation on an explicit event-queue backend. The backend
    /// is an execution detail: runs are byte-identical on either, which the
    /// differential suite asserts by replaying the sweep grid on both.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::with_backend(backend),
            stats: SimulationStats::default(),
        }
    }

    /// Which event-queue backend this simulation runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Execution counters.
    pub fn stats(&self) -> SimulationStats {
        self.stats
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timing-wheel health statistics, `None` on the heap oracle backend.
    pub fn wheel_stats(&self) -> Option<WheelStats> {
        self.queue.wheel_stats()
    }

    /// Schedule `payload` at an absolute instant.
    ///
    /// # Panics
    /// Panics if `time` is before the current clock — scheduling into the
    /// past would silently corrupt causality, so it is a programming error.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        self.stats.scheduled += 1;
        self.queue.push(time, payload)
    }

    /// Schedule `payload` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        let t = self.now + delay;
        self.stats.scheduled += 1;
        self.queue.push(t, payload)
    }

    /// Cancel a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let ok = self.queue.cancel(handle);
        if ok {
            self.stats.cancelled += 1;
        }
        ok
    }

    /// Firing time of the next pending event without advancing the clock.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advance the clock to the next event and return it, or `None` if the
    /// queue is empty (the simulation has run to completion).
    pub fn next_event(&mut self) -> Option<FiredEvent<E>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "event queue returned a past event");
        self.now = ev.time;
        self.stats.fired += 1;
        Some(FiredEvent {
            time: ev.time,
            handle: ev.handle,
            payload: ev.payload,
        })
    }

    /// Advance the clock to the next event *if* it fires at or before
    /// `horizon`; otherwise leave the event queued, move the clock to
    /// `horizon`, and return `None`.
    ///
    /// This is the primitive for bounded runs ("simulate 30 days"): drive
    /// `next_event_until` in a loop until it returns `None`.
    pub fn next_event_until(&mut self, horizon: SimTime) -> Option<FiredEvent<E>> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.next_event(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// Advance the clock to the next event *strictly before* `cutoff`;
    /// events at exactly `cutoff` stay queued and the clock stays put.
    ///
    /// This is the snapshot primitive: a checkpoint at `T` runs every
    /// event `< T`, pins the clock at `T` via
    /// [`advance_clock_to`](Self::advance_clock_to), and captures —
    /// leaving each event at exactly `T` for the resumed half, which is
    /// precisely where an uninterrupted run would fire it.
    pub fn next_event_before(&mut self, cutoff: SimTime) -> Option<FiredEvent<E>> {
        match self.queue.peek_time() {
            Some(t) if t < cutoff => self.next_event(),
            _ => None,
        }
    }

    /// Move the clock forward to `time` without firing anything. Used to
    /// pin the captured instant after a strictly-before-`T` prefix.
    ///
    /// # Panics
    /// Panics if `time` is before the current clock.
    pub fn advance_clock_to(&mut self, time: SimTime) {
        assert!(
            time >= self.now,
            "cannot move the clock backwards: now={}, requested={}",
            self.now,
            time
        );
        self.now = time;
    }

    /// The seq the queue will assign to the next scheduled event. Snapshot
    /// metadata: see [`EventQueue::next_seq`].
    pub fn next_seq(&self) -> u64 {
        self.queue.next_seq()
    }

    /// Copy out the pending-event set in pop order as
    /// `(time, seq, payload)` triples, leaving the queue intact (see
    /// [`EventQueue::snapshot_events`]).
    pub fn snapshot_events(&mut self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        self.queue.snapshot_events()
    }

    /// Rebuild a simulation from snapshot state: clock at `now`, counters
    /// restored, and every pending event re-queued under its original seq
    /// with the seq counter resumed at `next_seq`. The rebuilt simulation
    /// fires the same events in the same order with the same handles as
    /// the one that was captured.
    pub fn restore(
        backend: QueueBackend,
        now: SimTime,
        stats: SimulationStats,
        next_seq: u64,
        events: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) -> Simulation<E> {
        Simulation {
            now,
            queue: EventQueue::restore(backend, next_seq, events),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), 1u32);
        sim.schedule_at(SimTime::from_secs(2), 2u32);
        let e = sim.next_event().unwrap();
        assert_eq!(e.payload, 2);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        let e = sim.next_event().unwrap();
        assert_eq!(e.payload, 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.next_event().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), "first");
        sim.next_event();
        sim.schedule_after(SimDuration::from_secs(7), "second");
        let e = sim.next_event().unwrap();
        assert_eq!(e.time, SimTime::from_secs(17));
    }

    #[test]
    fn bounded_run_stops_at_horizon() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), "in");
        sim.schedule_at(SimTime::from_secs(100), "out");
        let horizon = SimTime::from_secs(50);
        let mut fired = Vec::new();
        while let Some(e) = sim.next_event_until(horizon) {
            fired.push(e.payload);
        }
        assert_eq!(fired, vec!["in"]);
        assert_eq!(sim.now(), horizon);
        assert_eq!(sim.pending(), 1);
        // The out-of-horizon event is still deliverable afterwards.
        assert_eq!(sim.next_event().unwrap().payload, "out");
    }

    #[test]
    fn horizon_event_at_exact_boundary_fires() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(50), "edge");
        assert!(sim.next_event_until(SimTime::from_secs(50)).is_some());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new();
        let h = sim.schedule_at(SimTime::from_secs(1), "dead");
        sim.schedule_at(SimTime::from_secs(2), "live");
        assert!(sim.cancel(h));
        let e = sim.next_event().unwrap();
        assert_eq!(e.payload, "live");
        assert_eq!(sim.stats().cancelled, 1);
    }

    #[test]
    fn stats_track_activity() {
        let mut sim = Simulation::new();
        let h = sim.schedule_after(SimDuration::from_secs(1), ());
        sim.schedule_after(SimDuration::from_secs(2), ());
        sim.cancel(h);
        while sim.next_event().is_some() {}
        let s = sim.stats();
        assert_eq!(s.scheduled, 2);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.fired, 1);
    }

    #[test]
    fn next_event_before_excludes_the_cutoff_instant() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(1), "early");
        sim.schedule_at(SimTime::from_secs(5), "edge");
        let cutoff = SimTime::from_secs(5);
        let mut fired = Vec::new();
        while let Some(e) = sim.next_event_before(cutoff) {
            fired.push(e.payload);
        }
        assert_eq!(fired, vec!["early"]);
        // The clock does NOT advance to the cutoff by itself...
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.advance_clock_to(cutoff);
        assert_eq!(sim.now(), cutoff);
        // ...and the edge event is still pending, firing at exactly the
        // cutoff afterwards.
        let e = sim.next_event().unwrap();
        assert_eq!(e.payload, "edge");
        assert_eq!(e.time, cutoff);
    }

    #[test]
    #[should_panic(expected = "cannot move the clock backwards")]
    fn advance_clock_to_rejects_the_past() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        sim.next_event();
        sim.advance_clock_to(SimTime::from_secs(3));
    }

    #[test]
    fn restore_replays_the_identical_future_on_both_backends() {
        for backend in [QueueBackend::TimingWheel, QueueBackend::BinaryHeap] {
            // Drive a simulation halfway, snapshot its queue and counters,
            // rebuild a fresh instance, and check both halves replay the
            // same (time, handle, payload) tail.
            let mut sim: Simulation<u32> = Simulation::with_backend(backend);
            for i in 0..30u32 {
                sim.schedule_at(SimTime::from_secs((i % 7) as u64 * 10), i);
            }
            let cutoff = SimTime::from_secs(30);
            while sim.next_event_before(cutoff).is_some() {}
            sim.advance_clock_to(cutoff);

            let events = sim.snapshot_events();
            let mut twin = Simulation::restore(
                backend,
                sim.now(),
                sim.stats(),
                sim.next_seq(),
                events,
            );
            assert_eq!(twin.now(), sim.now());
            assert_eq!(twin.stats(), sim.stats());
            assert_eq!(twin.pending(), sim.pending());

            loop {
                let a = sim.next_event();
                let b = twin.next_event();
                match (a, b) {
                    (None, None) => break,
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.handle, a.payload), (b.time, b.handle, b.payload));
                    }
                    (a, b) => panic!("streams diverged: {a:?} vs {b:?}"),
                }
            }
            // Post-drain scheduling also stays in lockstep (seq counter
            // was restored, so new handles match).
            let ha = sim.schedule_after(SimDuration::from_secs(1), 99);
            let hb = twin.schedule_after(SimDuration::from_secs(1), 99);
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn self_scheduling_loop_terminates_at_horizon() {
        // A periodic event that reschedules itself — the telemetry scraper
        // pattern used by sapsim-core.
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(SimTime::ZERO, 0);
        let horizon = SimTime::from_secs(300);
        let mut count = 0;
        while let Some(e) = sim.next_event_until(horizon) {
            count += 1;
            sim.schedule_after(SimDuration::from_secs(30), e.payload + 1);
        }
        // Fires at 0, 30, ..., 300 → 11 events.
        assert_eq!(count, 11);
        assert_eq!(sim.now(), horizon);
    }
}
