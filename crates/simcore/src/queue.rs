//! The pending-event set: a priority queue ordered by firing time with
//! stable FIFO tie-breaking and O(log n) cancellation.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event; used to cancel it.
///
/// Handles are unique for the lifetime of a queue and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

impl EventHandle {
    /// The raw sequence number. Exposed for logging/debugging only.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event queued for execution.
#[derive(Debug)]
pub struct QueuedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Cancellation handle; doubles as the FIFO tie-breaker.
    pub handle: EventHandle,
    /// Caller-defined payload.
    pub payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.handle == other.handle
    }
}

impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, within
        // a time, the lowest sequence number) pops first. This gives strict
        // FIFO order among simultaneous events — the determinism guarantee.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.handle.cmp(&self.handle))
    }
}

/// Priority queue of future events.
///
/// Cancellation is implemented with a tombstone set: `cancel` marks the
/// handle dead and `pop` lazily discards dead entries. This keeps both
/// operations O(log n) amortized without requiring a decrease-key heap.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    cancelled: HashSet<EventHandle>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at `time`. Returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventHandle {
        let handle = EventHandle(self.next_seq);
        self.next_seq += 1;
        self.heap.push(QueuedEvent {
            time,
            handle,
            payload,
        });
        handle
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired or
    /// was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false; // Never issued by this queue.
        }
        // Only tombstone handles that are actually still in the heap;
        // otherwise the tombstone would leak forever.
        if self.heap.iter().any(|e| e.handle == handle) && self.cancelled.insert(handle) {
            return true;
        }
        false
    }

    /// Firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the next live event.
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        self.skip_cancelled();
        self.heap.pop()
    }

    /// Drop cancelled entries sitting at the top of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.handle) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "b");
        q.push(t(10), "a");
        q.push(t(50), "c");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(t(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(t(1), ());
        q.pop().unwrap();
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(999)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.push(t(1), "dead");
        q.push(t(2), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_accounts_for_tombstones() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(1), 1);
        q.push(t(2), 2);
        q.push(t(3), 3);
        q.cancel(h1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(5), 5);
        assert_eq!(q.pop().unwrap().payload, 5);
        q.push(t(7), 7);
        q.push(t(3), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 7);
        assert_eq!(q.pop().unwrap().payload, 10);
    }
}
