//! The pending-event set: a priority queue ordered by firing time with
//! stable FIFO tie-breaking and O(1) amortized push/pop/cancel.
//!
//! Two interchangeable backends sit behind [`EventQueue`]:
//!
//! - [`QueueBackend::TimingWheel`] (the default): the hierarchical timing
//!   wheel in [`crate::wheel`] — constant-time bucket filing, slab-resident
//!   event records, and cancellation that flips a liveness bit instead of
//!   touching any ordered structure.
//! - [`QueueBackend::BinaryHeap`]: the original tombstoned binary heap,
//!   retained as an equivalence oracle. Its cancellation once scanned the
//!   whole heap (O(n) per cancel — the dominant cost at region scale where
//!   lifetime/retry/maintenance timers are rescheduled constantly); it now
//!   tracks the live-handle set directly so cancel is O(1) and `len()` can
//!   no longer underflow on a double cancel.
//!
//! Both backends implement the same strict `(time, handle)` pop order, so
//! any simulation must produce byte-identical results on either; the
//! differential suite in `tests/event_queue_equivalence.rs` and the
//! `heap_event_queue` config knob exist to prove exactly that.

use crate::time::SimTime;
use crate::wheel::{BuildSeqHasher, TimingWheel, WheelStats};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event; used to cancel it.
///
/// Handles are unique for the lifetime of a queue and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

impl EventHandle {
    /// The raw sequence number. Exposed for logging/debugging only.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rehydrate a handle from its seq (backend internals only).
    pub(crate) fn from_raw(seq: u64) -> Self {
        EventHandle(seq)
    }
}

/// An event queued for execution.
#[derive(Debug)]
pub struct QueuedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Cancellation handle; doubles as the FIFO tie-breaker.
    pub handle: EventHandle,
    /// Caller-defined payload.
    pub payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.handle == other.handle
    }
}

impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, within
        // a time, the lowest sequence number) pops first. This gives strict
        // FIFO order among simultaneous events — the determinism guarantee.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.handle.cmp(&self.handle))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timing wheel (default): O(1) amortized push/pop/cancel.
    #[default]
    TimingWheel,
    /// Tombstoned binary heap: O(log n) push/pop, kept as the oracle the
    /// wheel is differentially tested against.
    BinaryHeap,
}

impl QueueBackend {
    /// The stable spelling used by manifests and differential harnesses
    /// (`wheel` | `heap`).
    pub const fn as_str(self) -> &'static str {
        match self {
            QueueBackend::TimingWheel => "wheel",
            QueueBackend::BinaryHeap => "heap",
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wheel" => Ok(QueueBackend::TimingWheel),
            "heap" => Ok(QueueBackend::BinaryHeap),
            other => Err(format!("unknown queue backend `{other}` (use wheel|heap)")),
        }
    }
}

/// The retained heap implementation. `live` holds the seqs still pending,
/// so cancellation and `len()` never need to consult the heap itself;
/// `pop`/`peek_time` lazily discard entries whose seq has left the set.
#[derive(Debug)]
struct HeapQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    live: HashSet<u64, BuildSeqHasher>,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            live: HashSet::default(),
        }
    }

    fn insert(&mut self, time: SimTime, seq: u64, payload: E) {
        self.live.insert(seq);
        self.heap.push(QueuedEvent {
            time,
            handle: EventHandle(seq),
            payload,
        });
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        self.live.remove(&handle.0)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<QueuedEvent<E>> {
        self.skip_dead();
        let ev = self.heap.pop()?;
        self.live.remove(&ev.handle.0);
        Some(ev)
    }

    /// Drop cancelled entries sitting at the top of the heap.
    fn skip_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.handle.0) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[derive(Debug)]
enum Inner<E> {
    Wheel(TimingWheel<E>),
    Heap(HeapQueue<E>),
}

/// Priority queue of future events with strict `(time, handle)` pop order.
#[derive(Debug)]
pub struct EventQueue<E> {
    next_seq: u64,
    inner: Inner<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue on the default (timing-wheel) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Create an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let inner = match backend {
            QueueBackend::TimingWheel => Inner::Wheel(TimingWheel::new()),
            QueueBackend::BinaryHeap => Inner::Heap(HeapQueue::new()),
        };
        EventQueue { next_seq: 0, inner }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Wheel(_) => QueueBackend::TimingWheel,
            Inner::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len(),
            Inner::Heap(h) => h.live.len(),
        }
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at `time`. Returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.inner {
            Inner::Wheel(w) => w.insert(time, seq, payload),
            Inner::Heap(h) => h.insert(time, seq, payload),
        }
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired or
    /// was already cancelled. O(1) on both backends.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false; // Never issued by this queue.
        }
        match &mut self.inner {
            Inner::Wheel(w) => w.cancel(handle),
            Inner::Heap(h) => h.cancel(handle),
        }
    }

    /// Firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Wheel(w) => w.peek_time(),
            Inner::Heap(h) => h.peek_time(),
        }
    }

    /// Remove and return the next live event.
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop(),
            Inner::Heap(h) => h.pop(),
        }
    }

    /// Health statistics of the timing-wheel backend, `None` on the heap
    /// oracle. Observational only: reading them cannot perturb pop order.
    pub fn wheel_stats(&self) -> Option<WheelStats> {
        match &self.inner {
            Inner::Wheel(w) => Some(w.stats()),
            Inner::Heap(_) => None,
        }
    }

    /// The seq the next [`push`](Self::push) will be assigned. Exposed for
    /// the snapshot layer: restoring a queue must resume the counter past
    /// every seq ever issued so later pushes keep FIFO order behind every
    /// restored event.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Insert under a caller-assigned seq without advancing `next_seq` —
    /// the restore path, where seqs come from a snapshot rather than the
    /// counter.
    fn insert_raw(&mut self, time: SimTime, seq: u64, payload: E) {
        match &mut self.inner {
            Inner::Wheel(w) => w.insert(time, seq, payload),
            Inner::Heap(h) => h.insert(time, seq, payload),
        }
    }

    /// Remove every live event in `(time, handle)` pop order, returning
    /// `(time, seq, payload)` triples. Cancelled husks are discarded, so
    /// the result is exactly the future the queue still holds.
    pub fn drain_sorted(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(ev) = self.pop() {
            out.push((ev.time, ev.handle.raw(), ev.payload));
        }
        out
    }

    /// Copy out the pending-event set in `(time, handle)` pop order
    /// *without* losing it: drains the backend, then re-inserts a clone of
    /// every event under its original seq. Both backends order strictly by
    /// `(time, seq)` — the wheel merges at-or-before-cursor inserts into
    /// its sorted staging buffer at exactly that rank — so the subsequent
    /// pop sequence is unchanged. Used when a run snapshots itself and
    /// then continues. Timing-wheel health counters (cascades, occupancy
    /// peaks) may shift from the drain; those are observational and sit
    /// outside the canonical-bytes contract.
    pub fn snapshot_events(&mut self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let drained = self.drain_sorted();
        for (time, seq, payload) in &drained {
            self.insert_raw(*time, *seq, payload.clone());
        }
        drained
    }

    /// Rebuild a queue from snapshot contents: every `(time, seq, payload)`
    /// re-enters under its original seq, and the seq counter resumes at
    /// `next_seq` (which must exceed every restored seq, so post-restore
    /// pushes tie-break behind every restored event exactly as they would
    /// have in the uninterrupted run). Insertion order is irrelevant: both
    /// backends serve strictly by `(time, seq)`.
    pub fn restore(
        backend: QueueBackend,
        next_seq: u64,
        events: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) -> EventQueue<E> {
        let mut q = Self::with_backend(backend);
        for (time, seq, payload) in events {
            assert!(
                seq < next_seq,
                "restored event seq {seq} is not covered by next_seq {next_seq}"
            );
            q.insert_raw(time, seq, payload);
        }
        q.next_seq = next_seq;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::TimingWheel, QueueBackend::BinaryHeap];

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn default_backend_is_the_wheel() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::TimingWheel);
    }

    #[test]
    fn pops_in_time_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.push(t(30), "b");
            q.push(t(10), "a");
            q.push(t(50), "c");
            assert_eq!(q.pop().unwrap().payload, "a");
            assert_eq!(q.pop().unwrap().payload, "b");
            assert_eq!(q.pop().unwrap().payload, "c");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            for i in 0..100 {
                q.push(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().payload, i);
            }
        }
    }

    #[test]
    fn cancellation_removes_event() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let h1 = q.push(t(1), "a");
            q.push(t(2), "b");
            assert!(q.cancel(h1));
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().payload, "b");
        }
    }

    #[test]
    fn double_cancel_is_noop() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let h = q.push(t(1), ());
            assert!(q.cancel(h));
            assert!(!q.cancel(h));
            assert!(q.is_empty());
            // The historical bug: len() underflowed after a double cancel.
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let h = q.push(t(1), ());
            q.pop().unwrap();
            assert!(!q.cancel(h));
        }
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        for b in BACKENDS {
            let mut q: EventQueue<()> = EventQueue::with_backend(b);
            assert!(!q.cancel(EventHandle(999)));
        }
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let h = q.push(t(1), "dead");
            q.push(t(2), "live");
            q.cancel(h);
            assert_eq!(q.peek_time(), Some(t(2)));
        }
    }

    #[test]
    fn len_accounts_for_tombstones() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let h1 = q.push(t(1), 1);
            q.push(t(2), 2);
            q.push(t(3), 3);
            q.cancel(h1);
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.push(t(10), 10);
            q.push(t(5), 5);
            assert_eq!(q.pop().unwrap().payload, 5);
            q.push(t(7), 7);
            q.push(t(3), 3);
            assert_eq!(q.pop().unwrap().payload, 3);
            assert_eq!(q.pop().unwrap().payload, 7);
            assert_eq!(q.pop().unwrap().payload, 10);
        }
    }

    #[test]
    fn wheel_stats_are_wheel_only() {
        let mut q = EventQueue::with_backend(QueueBackend::TimingWheel);
        q.push(t(1), ());
        let stats = q.wheel_stats().expect("wheel backend reports stats");
        assert_eq!(stats.live, 1);
        let h: EventQueue<()> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        assert!(h.wheel_stats().is_none(), "heap oracle has no wheel stats");
    }

    #[test]
    fn snapshot_events_preserves_pop_order_and_seq_counter() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let mut oracle = EventQueue::with_backend(b);
            let mut handles = Vec::new();
            for i in 0..50u64 {
                let time = t(i % 9); // heavy ties
                handles.push(q.push(time, i));
                oracle.push(time, i);
                if i % 7 == 0 {
                    let victim = handles[(i as usize * 3) % handles.len()];
                    q.cancel(victim);
                    oracle.cancel(victim);
                }
            }
            let snap = q.snapshot_events();
            assert_eq!(snap.len(), q.len(), "snapshot covers every live event");
            assert_eq!(q.next_seq(), oracle.next_seq());
            // Pushes after the snapshot must order exactly as they would
            // have without it.
            q.push(t(4), 999);
            oracle.push(t(4), 999);
            loop {
                let (a, b) = (q.pop(), oracle.pop());
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.handle, x.payload), (y.time, y.handle, y.payload));
                    }
                    (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn restore_rebuilds_an_identical_future() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            for i in 0..40u64 {
                let h = q.push(t(i % 5), i);
                if i % 6 == 0 {
                    q.cancel(h);
                }
            }
            let next_seq = q.next_seq();
            let mut snap = q.snapshot_events();
            // Restoration must not depend on input order.
            snap.reverse();
            let mut restored = EventQueue::restore(b, next_seq, snap);
            assert_eq!(restored.len(), q.len());
            assert_eq!(restored.next_seq(), next_seq);
            q.push(t(2), 777);
            restored.push(t(2), 777);
            loop {
                match (q.pop(), restored.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.handle, x.payload), (y.time, y.handle, y.payload));
                    }
                    (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not covered by next_seq")]
    fn restore_rejects_seqs_beyond_the_counter() {
        let _ = EventQueue::restore(
            QueueBackend::TimingWheel,
            3,
            vec![(t(1), 5u64, "late".to_string())],
        );
    }

    #[test]
    fn backends_agree_on_a_mixed_script() {
        // A deterministic mini-differential: the full randomized suite lives
        // in tests/event_queue_equivalence.rs.
        let run = |backend: QueueBackend| -> Vec<(u64, u64)> {
            let mut q = EventQueue::with_backend(backend);
            let mut handles = Vec::new();
            let mut out = Vec::new();
            for i in 0..200u64 {
                // Times collide heavily (mod 7) and include far-future ones.
                let time = if i % 13 == 0 { 1 << 40 } else { i % 7 };
                handles.push(q.push(t(time), i));
                if i % 5 == 0 {
                    q.cancel(handles[(i as usize * 7) % handles.len()]);
                }
                if i % 3 == 0 {
                    if let Some(e) = q.pop() {
                        out.push((e.time.as_millis(), e.handle.raw()));
                    }
                }
            }
            while let Some(e) = q.pop() {
                out.push((e.time.as_millis(), e.handle.raw()));
            }
            out
        };
        assert_eq!(run(QueueBackend::TimingWheel), run(QueueBackend::BinaryHeap));
    }
}
