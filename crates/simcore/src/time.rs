//! Simulated time.
//!
//! The SAP dataset samples telemetry at 30–300 s intervals and reports CPU
//! ready time in milliseconds, so the engine uses a millisecond tick as its
//! base unit. A `u64` of milliseconds covers ~584 million years, far beyond
//! any observation window.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Milliseconds per second.
pub const MILLIS_PER_SECOND: u64 = 1_000;
/// Milliseconds per minute.
pub const MILLIS_PER_MINUTE: u64 = 60 * MILLIS_PER_SECOND;
/// Milliseconds per hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MINUTE;
/// Milliseconds per day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

/// An absolute instant on the simulated clock, measured in milliseconds since
/// the start of the simulation (the paper's epoch is 2024-07-31 00:00 UTC;
/// the simulation clock starts at zero and the analysis layer maps day
/// indices to calendar labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero instant — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SECOND)
    }

    /// Construct from whole hours since simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * MILLIS_PER_HOUR)
    }

    /// Construct from whole days since simulation start.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * MILLIS_PER_DAY)
    }

    /// Raw milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SECOND
    }

    /// Fractional hours since simulation start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Zero-based index of the simulated day containing this instant.
    pub const fn day_index(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Zero-based hour of day (0..24) of this instant.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % MILLIS_PER_DAY) / MILLIS_PER_HOUR
    }

    /// Zero-based day of week, treating day 0 as a Wednesday.
    ///
    /// The paper's observation window starts on 2024-07-31, a Wednesday;
    /// weekday/weekend effects in the workload models key off this.
    pub const fn day_of_week(self) -> u64 {
        // Day 0 = Wednesday = weekday index 2 (Monday = 0).
        (self.day_index() + 2) % 7
    }

    /// Whether this instant falls on a Saturday or Sunday (see
    /// [`day_of_week`](Self::day_of_week) for the calendar anchoring).
    pub const fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Duration elapsed since an earlier instant. Panics in debug builds if
    /// `earlier` is later than `self`; saturates in release builds.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() called with a later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SECOND)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MILLIS_PER_MINUTE)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MILLIS_PER_HOUR)
    }

    /// Construct from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * MILLIS_PER_DAY)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * MILLIS_PER_SECOND as f64).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SECOND
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SECOND as f64
    }

    /// Fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_DAY as f64
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let rem = self.0 % MILLIS_PER_DAY;
        let h = rem / MILLIS_PER_HOUR;
        let m = (rem % MILLIS_PER_HOUR) / MILLIS_PER_MINUTE;
        let s = (rem % MILLIS_PER_MINUTE) / MILLIS_PER_SECOND;
        write!(f, "d{day:02} {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MILLIS_PER_SECOND {
            write!(f, "{}ms", self.0)
        } else if self.0 < MILLIS_PER_MINUTE {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else if self.0 < MILLIS_PER_DAY {
            write!(f, "{:.1}h", self.0 as f64 / MILLIS_PER_HOUR as f64)
        } else {
            write!(f, "{:.1}d", self.as_days_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(90).as_millis(), 90_000);
        assert_eq!(SimTime::from_days(2).as_secs(), 172_800);
        assert_eq!(SimDuration::from_mins(5).as_secs(), 300);
        assert_eq!(SimDuration::from_hours(3).as_millis(), 3 * MILLIS_PER_HOUR);
    }

    #[test]
    fn day_and_hour_indexing() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(7);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.hour_of_day(), 7);
    }

    #[test]
    fn weekend_anchoring_matches_paper_epoch() {
        // Day 0 is Wednesday 2024-07-31.
        assert_eq!(SimTime::from_days(0).day_of_week(), 2);
        // Day 3 is Saturday 2024-08-03.
        assert!(SimTime::from_days(3).is_weekend());
        assert!(SimTime::from_days(4).is_weekend());
        assert!(!SimTime::from_days(5).is_weekend());
        // One week later, Saturday again.
        assert!(SimTime::from_days(10).is_weekend());
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(100);
        let b = a + SimDuration::from_secs(50);
        assert_eq!(b.as_secs(), 150);
        assert_eq!((b - a).as_secs(), 50);
        assert_eq!(b.since(a).as_secs(), 50);
        assert_eq!(SimDuration::from_secs(10) * 6, SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(1) / 2, SimDuration::from_secs(30));
    }

    #[test]
    fn saturating_subtraction() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(20);
        assert_eq!((a - b), SimDuration::ZERO);
        let mut d = SimDuration::from_secs(1);
        d -= SimDuration::from_secs(5);
        assert!(d.is_zero());
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.0015).as_millis(), 1002);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(0).to_string(), "d00 00:00:00");
        let t = SimTime::from_days(12) + SimDuration::from_hours(5) + SimDuration::from_secs(90);
        assert_eq!(t.to_string(), "d12 05:01:30");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.0s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.0h");
        assert_eq!(SimDuration::from_days(3).to_string(), "3.0d");
    }
}
