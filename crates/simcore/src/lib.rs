//! # sapsim-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the time base, event queue, and reproducible random
//! number streams that every other `sapsim` crate builds on. It is the
//! substrate for reproducing the 30-day observation window of the SAP Cloud
//! Infrastructure dataset (IMC '25): the cloud simulator in `sapsim-core`
//! schedules VM lifecycle events and telemetry scrapes on the engine defined
//! here.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** A simulation run is a pure function of its
//!    configuration and seed. The event queue breaks timestamp ties by
//!    insertion order, and all randomness flows through [`SimRng`], which
//!    supports labelled stream splitting so that adding a consumer of
//!    randomness in one subsystem never perturbs another.
//! 2. **Simplicity and robustness** over cleverness (following the smoltcp
//!    school of API design): plain data structures, no interior mutability,
//!    no global state, no unsafe code.
//! 3. **Throughput.** The engine must sustain tens of millions of events so
//!    that a full region (1,800 hypervisors, 48,000 VMs, 30 days) simulates
//!    in seconds-to-minutes on a laptop. The [`par`] module provides a
//!    deterministic fan-out primitive (gated behind the `parallel` cargo
//!    feature, `std::thread` only) so hot loops can use every core without
//!    compromising goal 1: results are bit-identical at any thread count.
//!
//! ## Quick tour
//!
//! ```
//! use sapsim_sim::{Simulation, SimTime, SimDuration};
//!
//! // The event payload is caller-defined.
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_after(SimDuration::from_secs(30), Ev::Tick(1));
//! sim.schedule_after(SimDuration::from_secs(60), Ev::Tick(2));
//!
//! let mut seen = Vec::new();
//! while let Some(fired) = sim.next_event() {
//!     seen.push((fired.time.as_secs(), fired.payload));
//! }
//! assert_eq!(seen, vec![(30, Ev::Tick(1)), (60, Ev::Tick(2))]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod par;
mod queue;
mod rng;
mod time;
mod wheel;

pub use engine::{FiredEvent, Simulation, SimulationStats};
pub use queue::{EventHandle, EventQueue, QueueBackend, QueuedEvent};
pub use wheel::{WheelStats, WHEEL_LEVELS};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE, MILLIS_PER_SECOND};
