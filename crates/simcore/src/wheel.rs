//! Hierarchical timing wheel: the O(1)-amortized backend of [`EventQueue`].
//!
//! The classic Varghese–Lauck design, as used by kernel timers and the
//! calendar queues of large discrete-event simulators: `LEVELS` wheels of
//! `BUCKETS` buckets each, where level `l` covers ticks at a granularity of
//! `BUCKETS^l` milliseconds. An event at absolute time `t` lives at the
//! lowest level whose bucket span still separates it from the current tick
//! (`msb(t ^ cur) / BITS`), so near events sit in fine buckets and far
//! events in coarse ones. Advancing the clock *cascades*: when a coarse
//! bucket comes due, its events are re-filed into strictly finer levels —
//! each event is re-linked at most `LEVELS` times over its whole life.
//! Events beyond the top level's span (~2.2 simulated years from `cur`) go
//! to a flat overflow list that is re-filed wholesale on the rare occasion
//! the wheels run dry.
//!
//! Event records live in a slab (`Vec` + free list). Buckets are intrusive
//! singly-linked lists over slab indices, so push/cancel/pop never allocate
//! in steady state. Cancellation looks up the slab slot via a seq→slot map
//! and flips a liveness bit — O(1), no heap scan; dead slots are reclaimed
//! lazily when their bucket drains.
//!
//! ## Ordering contract
//!
//! [`EventQueue`] promises strict `(time, handle)` pop order. Bucket FIFO
//! alone cannot guarantee that across cascades (a direct level-0 insertion
//! may be linked ahead of a lower-seq event that cascades into the same
//! tick later), so the wheel never pops straight out of a bucket: a due
//! bucket is drained into a staging buffer and sorted by seq first. Each
//! event is sorted exactly once, against its own tie group only, keeping
//! the amortized cost O(log k) for k simultaneous events — and since bucket
//! lists preserve insertion order, the common all-ties case is already
//! sorted and costs O(k).
//!
//! [`EventQueue`]: crate::queue::EventQueue

use crate::queue::{EventHandle, QueuedEvent};
use crate::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// log2 of the bucket count per level.
const BITS: u32 = 6;
/// Buckets per level.
const BUCKETS: usize = 1 << BITS;
/// Index mask within a level.
const MASK: u64 = BUCKETS as u64 - 1;
/// Wheel levels. Level `LEVELS-1` buckets span `64^(LEVELS-1)` ms; the
/// wheels jointly cover `64^LEVELS` ms ≈ 2.2 simulated years past `cur`.
const LEVELS: usize = 6;

/// Number of levels in the hierarchical wheel, as reported by
/// [`WheelStats::occupied_buckets`].
pub const WHEEL_LEVELS: usize = LEVELS;

/// Engine-health statistics of one timing wheel: cumulative cascade work
/// plus a point-in-time occupancy snapshot. Purely observational — a
/// wheel maintains these unconditionally (the increments are a rounding
/// error next to the list surgery they count) and nothing reads them back
/// into queue behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Coarse-bucket drains that re-filed events into finer levels.
    pub cascades: u64,
    /// Live events re-filed (or staged) by those cascades.
    pub cascade_moves: u64,
    /// Wholesale overflow-list re-files after the wheels ran dry.
    pub overflow_refiles: u64,
    /// Current overflow-list length, husks included.
    pub overflow_depth: usize,
    /// High-water mark of the overflow list.
    pub max_overflow_depth: usize,
    /// Non-empty buckets per level, finest first.
    pub occupied_buckets: [u32; WHEEL_LEVELS],
    /// Live (scheduled, not yet fired or cancelled) events.
    pub live: usize,
}
/// Null link in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// Multiplicative hasher for the `u64` seq keys of the cancel map. Seqs are
/// dense and sequential, so SipHash's DoS resistance buys nothing here —
/// a splitmix64-style finalizer gives full avalanche at a fraction of the
/// cost, and this map sits on the push/cancel hot path.
#[derive(Default)]
pub(crate) struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused on the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
    }
}

/// `BuildHasher` for [`SeqHasher`]-keyed maps.
pub(crate) type BuildSeqHasher = BuildHasherDefault<SeqHasher>;

/// One slab record. `next` threads the intrusive bucket / overflow-free
/// list; `live` is the O(1) cancellation bit.
#[derive(Debug)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    next: u32,
    live: bool,
    payload: Option<E>,
}

/// Head/tail of one bucket's intrusive FIFO list.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NIL,
        tail: NIL,
    };
}

/// An event staged for delivery: already due, sorted by `(time, seq)`.
#[derive(Debug, Clone, Copy)]
struct DueEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

/// The hierarchical timing wheel. See the module docs for the design.
#[derive(Debug)]
pub(crate) struct TimingWheel<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// seq → slab slot, for O(1) cancellation. Keyed lookups only — never
    /// iterated, so map order cannot leak into results.
    index: HashMap<u64, u32, BuildSeqHasher>,
    levels: Vec<[Bucket; BUCKETS]>,
    /// Bit `j` set ⇔ bucket `j` of that level is non-empty.
    occupancy: [u64; LEVELS],
    /// Events farther than the wheels' joint span from `cur`.
    overflow: Vec<u32>,
    /// Current tick in ms. Invariant: every wheel/overflow-resident event
    /// has `time > cur`; everything at or before `cur` is in `due`.
    cur: u64,
    /// Due events in `(time, seq)` order, consumed from the front.
    due: VecDeque<DueEntry>,
    /// Live (scheduled, not yet fired or cancelled) event count.
    live: usize,
    /// Cumulative cascade counter (see [`WheelStats::cascades`]).
    cascades: u64,
    /// Cumulative cascade re-file counter.
    cascade_moves: u64,
    /// Cumulative overflow re-file counter.
    overflow_refiles: u64,
    /// High-water mark of `overflow.len()`.
    max_overflow: usize,
}

impl<E> TimingWheel<E> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::default(),
            levels: vec![[Bucket::EMPTY; BUCKETS]; LEVELS],
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            cur: 0,
            due: VecDeque::new(),
            live: 0,
            cascades: 0,
            cascade_moves: 0,
            overflow_refiles: 0,
            max_overflow: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Snapshot the wheel's health statistics.
    pub(crate) fn stats(&self) -> WheelStats {
        let mut occupied_buckets = [0u32; WHEEL_LEVELS];
        for (out, mask) in occupied_buckets.iter_mut().zip(&self.occupancy) {
            *out = mask.count_ones();
        }
        WheelStats {
            cascades: self.cascades,
            cascade_moves: self.cascade_moves,
            overflow_refiles: self.overflow_refiles,
            overflow_depth: self.overflow.len(),
            max_overflow_depth: self.max_overflow,
            occupied_buckets,
            live: self.live,
        }
    }

    /// Insert an event under a caller-assigned seq (the facade owns the
    /// seq counter so handles stay unique across backend choices).
    pub(crate) fn insert(&mut self, time: SimTime, seq: u64, payload: E) {
        let slot = self.alloc(time, seq, payload);
        self.index.insert(seq, slot);
        self.live += 1;
        if time.as_millis() <= self.cur {
            // At or before the drained frontier (the engine forbids past
            // scheduling, but the raw queue mirrors the heap's semantics):
            // merge into the staging buffer at its (time, seq) rank.
            self.stage_sorted(slot);
        } else {
            self.file(slot);
        }
    }

    /// O(1) cancel: unlink nothing, just kill the record. The husk is
    /// reclaimed when its bucket drains or it reaches the front of `due`.
    pub(crate) fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.index.remove(&handle.raw()) {
            Some(slot) => {
                let rec = &mut self.slots[slot as usize];
                debug_assert!(rec.live, "index entry for a dead slot");
                rec.live = false;
                rec.payload = None;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.settle_front();
        self.due.front().map(|e| e.time)
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent<E>> {
        self.settle_front();
        let e = self.due.pop_front()?;
        let rec = &mut self.slots[e.slot as usize];
        debug_assert!(rec.live && rec.seq == e.seq);
        let payload = rec.payload.take().expect("live staged event has a payload");
        self.index.remove(&e.seq);
        self.live -= 1;
        self.release(e.slot);
        Some(QueuedEvent {
            time: e.time,
            handle: EventHandle::from_raw(e.seq),
            payload,
        })
    }

    // ---- slab -----------------------------------------------------------

    fn alloc(&mut self, time: SimTime, seq: u64, payload: E) -> u32 {
        let rec = Slot {
            time,
            seq,
            next: NIL,
            live: true,
            payload: Some(payload),
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = rec;
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("slab capped at u32 slots");
                self.slots.push(rec);
                i
            }
        }
    }

    fn release(&mut self, slot: u32) {
        let rec = &mut self.slots[slot as usize];
        rec.live = false;
        rec.payload = None;
        rec.next = NIL;
        self.free.push(slot);
    }

    // ---- filing ---------------------------------------------------------

    /// Level and bucket index for time `t`, given the current tick — or
    /// `None` when `t` is beyond the wheels' span (→ overflow).
    fn locate(cur: u64, t: u64) -> Option<(usize, usize)> {
        debug_assert!(t > cur);
        let msb = 63 - (t ^ cur).leading_zeros();
        let level = (msb / BITS) as usize;
        if level >= LEVELS {
            return None;
        }
        Some((level, ((t >> (BITS * level as u32)) & MASK) as usize))
    }

    /// File a future-dated slot into its wheel bucket or the overflow list.
    fn file(&mut self, slot: u32) {
        let t = self.slots[slot as usize].time.as_millis();
        match Self::locate(self.cur, t) {
            Some((level, j)) => {
                self.slots[slot as usize].next = NIL;
                let bucket = &mut self.levels[level][j];
                if bucket.head == NIL {
                    bucket.head = slot;
                } else {
                    self.slots[bucket.tail as usize].next = slot;
                }
                bucket.tail = slot;
                self.occupancy[level] |= 1 << j;
            }
            None => {
                self.overflow.push(slot);
                self.max_overflow = self.max_overflow.max(self.overflow.len());
            }
        }
    }

    /// Merge an already-due slot into the staging buffer at `(time, seq)`
    /// rank. Fast path: monotone appends (same-tick pushes during a drain
    /// arrive in seq order) cost O(1).
    fn stage_sorted(&mut self, slot: u32) {
        let rec = &self.slots[slot as usize];
        let e = DueEntry {
            time: rec.time,
            seq: rec.seq,
            slot,
        };
        let fits_back = self
            .due
            .back()
            .map(|b| (b.time, b.seq) < (e.time, e.seq))
            .unwrap_or(true);
        if fits_back {
            self.due.push_back(e);
        } else {
            let at = self
                .due
                .binary_search_by(|p| (p.time, p.seq).cmp(&(e.time, e.seq)))
                .unwrap_err();
            self.due.insert(at, e);
        }
    }

    // ---- advancing ------------------------------------------------------

    /// Drop dead entries off the front of `due`, refilling it from the
    /// wheels as needed, until the front is live or nothing is left.
    fn settle_front(&mut self) {
        loop {
            if self.due.is_empty() && !self.refill_due() {
                return;
            }
            let front = self.due.front().expect("refill_due returned non-empty");
            if self.slots[front.slot as usize].live {
                return;
            }
            let husk = self.due.pop_front().expect("front exists").slot;
            self.release(husk);
        }
    }

    /// Advance `cur` bucket by bucket until at least one event is staged.
    /// Returns false when the wheels and overflow hold nothing at all.
    fn refill_due(&mut self) -> bool {
        loop {
            if !self.due.is_empty() {
                return true;
            }
            let Some((level, j)) = self.next_bucket() else {
                // Wheels dry — jump the clock to the overflow horizon.
                if !self.refile_overflow() {
                    return false;
                }
                continue;
            };
            let head = self.levels[level][j].head;
            self.levels[level][j] = Bucket::EMPTY;
            self.occupancy[level] &= !(1u64 << j);
            let shift = BITS * level as u32;
            if level == 0 {
                // A level-0 bucket is exactly one tick wide.
                self.cur = ((self.cur >> BITS) << BITS) | j as u64;
                self.drain_tick(head);
            } else {
                // Jump to the bucket's start tick, then re-file its events
                // into strictly finer levels (or stage exact hits).
                let above = shift + BITS;
                self.cur = ((self.cur >> above) << above) | ((j as u64) << shift);
                self.cascade(head);
            }
        }
    }

    /// The lowest-level, lowest-index non-empty bucket strictly ahead of
    /// `cur`. Buckets at or behind `cur`'s own index are provably empty at
    /// every level (residents satisfy `t > cur` within the level's window).
    fn next_bucket(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let idx_cur = ((self.cur >> (BITS * level as u32)) & MASK) as u32;
            let ahead = match idx_cur {
                63 => 0,
                i => !0u64 << (i + 1),
            };
            let m = self.occupancy[level] & ahead;
            if m != 0 {
                return Some((level, m.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Stage a drained level-0 bucket: all entries share one tick, so the
    /// tie group is sorted by seq and appended (`due` is empty here — the
    /// wheel only advances once staged events are exhausted).
    fn drain_tick(&mut self, head: u32) {
        debug_assert!(self.due.is_empty());
        let mut group: Vec<(u64, u32)> = Vec::new();
        let mut at = head;
        while at != NIL {
            let rec = &self.slots[at as usize];
            let next = rec.next;
            if rec.live {
                debug_assert_eq!(rec.time.as_millis(), self.cur);
                group.push((rec.seq, at));
            } else {
                self.release(at);
            }
            at = next;
        }
        group.sort_unstable();
        for (seq, slot) in group {
            self.due.push_back(DueEntry {
                time: self.slots[slot as usize].time,
                seq,
                slot,
            });
        }
    }

    /// Re-file a drained coarse bucket one or more levels down. Exact hits
    /// on the new `cur` are staged like a level-0 drain.
    fn cascade(&mut self, head: u32) {
        debug_assert!(self.due.is_empty());
        self.cascades += 1;
        let mut hits: Vec<(u64, u32)> = Vec::new();
        let mut at = head;
        while at != NIL {
            let rec = &self.slots[at as usize];
            let next = rec.next;
            if !rec.live {
                self.release(at);
            } else if rec.time.as_millis() == self.cur {
                self.cascade_moves += 1;
                hits.push((rec.seq, at));
            } else {
                self.cascade_moves += 1;
                self.file(at);
            }
            at = next;
        }
        hits.sort_unstable();
        for (seq, slot) in hits {
            self.due.push_back(DueEntry {
                time: self.slots[slot as usize].time,
                seq,
                slot,
            });
        }
    }

    /// The wheels are empty: jump `cur` to the earliest live overflow time
    /// and re-file the whole overflow list against it. Rare (at most once
    /// per `64^LEVELS` ms of clock advance) and O(overflow), so amortized
    /// cost stays constant. Returns false if no live event exists anywhere.
    fn refile_overflow(&mut self) -> bool {
        let mut min_t: Option<u64> = None;
        for &s in &self.overflow {
            let rec = &self.slots[s as usize];
            if rec.live {
                let t = rec.time.as_millis();
                min_t = Some(min_t.map_or(t, |m| m.min(t)));
            }
        }
        let Some(min_t) = min_t else {
            let husks = std::mem::take(&mut self.overflow);
            for s in husks {
                self.release(s);
            }
            return false;
        };
        debug_assert!(
            min_t > self.cur,
            "overflow events are beyond the wheel span"
        );
        self.overflow_refiles += 1;
        self.cur = min_t;
        let items = std::mem::take(&mut self.overflow);
        let mut hits: Vec<(u64, u32)> = Vec::new();
        for s in items {
            let rec = &self.slots[s as usize];
            if !rec.live {
                self.release(s);
            } else if rec.time.as_millis() == self.cur {
                hits.push((rec.seq, s));
            } else {
                self.file(s);
            }
        }
        hits.sort_unstable();
        debug_assert!(!hits.is_empty(), "the min overflow event must stage");
        for (seq, slot) in hits {
            self.due.push_back(DueEntry {
                time: self.slots[slot as usize].time,
                seq,
                slot,
            });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimingWheel<u64> {
        TimingWheel::new()
    }

    fn drain(w: &mut TimingWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.time.as_millis(), e.handle.raw()));
        }
        out
    }

    #[test]
    fn locate_places_near_events_at_level_zero() {
        assert_eq!(TimingWheel::<()>::locate(0, 1), Some((0, 1)));
        assert_eq!(TimingWheel::<()>::locate(100, 101), Some((0, 37)));
        // Crossing a 64-tick boundary promotes one level.
        assert_eq!(TimingWheel::<()>::locate(63, 64), Some((1, 1)));
        // Beyond 64^6 ms from cur → overflow.
        assert_eq!(TimingWheel::<()>::locate(0, 64u64.pow(6)), None);
    }

    #[test]
    fn pops_across_levels_in_time_order() {
        let mut w = wheel();
        // One event per level, pushed out of order.
        let times = [5u64, 400, 30_000, 2_000_000, 200_000_000, 20_000_000_000];
        for (i, &t) in times.iter().rev().enumerate() {
            w.insert(SimTime::from_millis(t), i as u64, t);
        }
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, times.to_vec());
    }

    #[test]
    fn cascade_preserves_seq_order_within_a_tick() {
        let mut w = wheel();
        // Two events at the same far tick (cascades through 2+ levels),
        // plus a later direct insert at that tick after partial advance.
        let t = 1_000_000u64;
        w.insert(SimTime::from_millis(t), 0, 0);
        w.insert(SimTime::from_millis(5), 1, 1);
        w.insert(SimTime::from_millis(t), 2, 2);
        assert_eq!(w.pop().unwrap().handle.raw(), 1);
        w.insert(SimTime::from_millis(t), 3, 3);
        let rest: Vec<u64> = drain(&mut w).into_iter().map(|(_, s)| s).collect();
        assert_eq!(rest, vec![0, 2, 3]);
    }

    #[test]
    fn overflow_round_trip() {
        let mut w = wheel();
        let far = 64u64.pow(6) + 123; // beyond the wheel span from tick 0
        w.insert(SimTime::from_millis(far), 0, 0);
        w.insert(SimTime::from_millis(far + 7), 1, 1);
        w.insert(SimTime::from_millis(10), 2, 2);
        assert_eq!(drain(&mut w), vec![(10, 2), (far, 0), (far + 7, 1)]);
    }

    #[test]
    fn cancelled_slots_are_reclaimed() {
        let mut w = wheel();
        for seq in 0..100 {
            w.insert(SimTime::from_millis(seq * 10), seq, seq);
        }
        for seq in 0..100 {
            if seq % 2 == 0 {
                assert!(w.cancel(EventHandle::from_raw(seq)));
            }
        }
        assert_eq!(w.len(), 50);
        assert_eq!(drain(&mut w).len(), 50);
        assert_eq!(w.len(), 0);
        // Every slot is back on the free list.
        assert_eq!(w.free.len(), w.slots.len());
    }

    #[test]
    fn stats_count_cascades_and_overflow_depth() {
        let mut w = wheel();
        assert_eq!(w.stats(), WheelStats::default());

        // Two far-future events cascade through coarse levels on drain.
        w.insert(SimTime::from_millis(1_000_000), 0, 0);
        w.insert(SimTime::from_millis(1_000_001), 1, 1);
        let s = w.stats();
        assert_eq!(s.live, 2);
        assert!(s.occupied_buckets.iter().sum::<u32>() >= 1);
        drain(&mut w);
        let s = w.stats();
        assert!(s.cascades >= 1, "coarse drains must count as cascades");
        assert!(s.cascade_moves >= 2, "both events were re-filed");
        assert_eq!(s.live, 0);

        // An overflow event raises the depth and the high-water mark, and
        // draining it counts one wholesale re-file.
        let far = 64u64.pow(6) + 5;
        w.insert(SimTime::from_millis(far), 2, 2);
        assert_eq!(w.stats().overflow_depth, 1);
        assert_eq!(w.stats().max_overflow_depth, 1);
        drain(&mut w);
        let s = w.stats();
        assert_eq!(s.overflow_depth, 0);
        assert_eq!(s.max_overflow_depth, 1);
        assert_eq!(s.overflow_refiles, 1);
    }

    #[test]
    fn past_insert_matches_heap_semantics() {
        let mut w = wheel();
        w.insert(SimTime::from_millis(100), 0, 0);
        assert!(w.pop().is_some()); // cur → 100
        w.insert(SimTime::from_millis(40), 1, 1);
        w.insert(SimTime::from_millis(100), 2, 2);
        assert_eq!(drain(&mut w), vec![(40, 1), (100, 2)]);
    }
}
