//! Property-based tests for the discrete-event engine: ordering, clock
//! monotonicity, and cancellation invariants under arbitrary schedules.

use proptest::prelude::*;
use sapsim_sim::{SimTime, Simulation};

proptest! {
    /// Events always fire in non-decreasing time order, and equal-time
    /// events fire in insertion order, for any schedule.
    #[test]
    fn firing_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_secs(t), i);
        }
        let mut fired: Vec<(u64, usize)> = Vec::new();
        while let Some(e) = sim.next_event() {
            fired.push((e.time.as_secs(), e.payload));
        }
        // Expected: stable sort of (time, insertion index).
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        prop_assert_eq!(fired, expected);
    }

    /// The clock never moves backwards, whatever mix of scheduling and
    /// horizon-bounded stepping happens.
    #[test]
    fn clock_is_monotone(
        times in proptest::collection::vec(0u64..500, 1..100),
        horizon in 0u64..600,
    ) {
        let mut sim = Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_secs(t), ());
        }
        let mut last = sim.now();
        while let Some(e) = sim.next_event_until(SimTime::from_secs(horizon)) {
            prop_assert!(e.time >= last);
            last = e.time;
        }
        prop_assert!(sim.now() >= last);
        prop_assert_eq!(sim.now(), SimTime::from_secs(horizon).max(last));
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut sim = Simulation::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_secs(t), i)))
            .collect();
        let mut expect_alive: Vec<usize> = Vec::new();
        for (i, h) in handles {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(sim.cancel(h));
            } else {
                expect_alive.push(i);
            }
        }
        let mut fired: Vec<usize> = Vec::new();
        while let Some(e) = sim.next_event() {
            fired.push(e.payload);
        }
        fired.sort_unstable();
        expect_alive.sort_unstable();
        prop_assert_eq!(fired, expect_alive);
    }

    /// Two engines fed the same schedule behave identically (determinism).
    #[test]
    fn replay_determinism(times in proptest::collection::vec(0u64..1000, 1..150)) {
        let run = || {
            let mut sim = Simulation::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_secs(t), i);
            }
            let mut out = Vec::new();
            while let Some(e) = sim.next_event() {
                out.push((e.time, e.payload));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
