//! CLI integration: drive every subcommand through the library entry
//! point, including an export → import round trip through a temp file,
//! a sweep over a manifest grid, and the stable exit-code contract.

use sapsim_cli::{run_to, CliError};
use sapsim_sweep::{RunSummary, SweepReport};

fn run_capture(parts: &[&str]) -> Result<String, CliError> {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run_to(&argv, &mut out).map(|()| String::from_utf8(out).expect("utf8"))
}

#[test]
fn help_prints_usage() {
    let text = run_capture(&["help"]).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
    assert!(text.contains("sweep"));
    // No command at all also prints usage.
    let text = run_capture(&[]).unwrap();
    assert!(text.contains("USAGE"));
}

#[test]
fn unknown_command_errors() {
    let err = run_capture(&["frobnicate"]).unwrap_err();
    assert!(err.to_string().contains("frobnicate"));
    assert_eq!(err.exit_code(), 2);
}

#[test]
fn simulate_prints_headline_findings() {
    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
    ])
    .unwrap();
    assert!(text.contains("hypervisors"), "{text}");
    assert!(text.contains("placements:"));
    assert!(text.contains("cpu:"));
    assert!(text.contains("memory:"));
    assert!(text.contains("contention:"));
}

#[test]
fn simulate_json_prints_one_versioned_summary_line() {
    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--json",
    ])
    .unwrap();
    assert_eq!(text.lines().count(), 1, "one JSON object, nothing else");
    let summary = RunSummary::from_json_str(text.trim()).expect("valid summary");
    assert_eq!(summary.config.seed, 3);
    assert_eq!(summary.config.threads, 0, "canonicalized config");
    assert!(summary.stats.placed > 0);
    assert_eq!(summary.canonical_hash.len(), 16);
}

#[test]
fn simulate_rejects_bad_arguments() {
    assert!(run_capture(&["simulate", "--scale", "9"]).is_err());
    assert!(run_capture(&["simulate", "--policy", "nope"]).is_err());
    assert!(run_capture(&["simulate", "stray-positional"]).is_err());
    assert!(run_capture(&["simulate", "--bogus"]).is_err());
}

#[test]
fn exit_codes_separate_failure_classes() {
    // Usage: unknown option.
    assert_eq!(
        run_capture(&["simulate", "--bogus"]).unwrap_err().exit_code(),
        2
    );
    // Config: parseable arguments describing an invalid run.
    assert_eq!(
        run_capture(&["simulate", "--scale", "9"])
            .unwrap_err()
            .exit_code(),
        3
    );
    // Io: missing input file.
    assert_eq!(
        run_capture(&["import", "/nonexistent/definitely-not-here.csv"])
            .unwrap_err()
            .exit_code(),
        4
    );
    // Data: readable file, malformed content.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("sapsim-cli-badlog-{}.jsonl", std::process::id()));
    std::fs::write(&path, "not json\n").unwrap();
    let err = run_capture(&["obs", "summary", path.to_str().unwrap()]).unwrap_err();
    assert_eq!(err.exit_code(), 5, "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sweep_runs_a_manifest_grid() {
    let dir = std::env::temp_dir().join(format!("sapsim-cli-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("grid.json");
    std::fs::write(
        &manifest,
        r#"{
            "name": "cli-grid",
            "scale": 0.01,
            "days": 1,
            "warmup_days": 0,
            "seeds": [1, 2],
            "drs": [true, false]
        }"#,
    )
    .unwrap();
    let manifest_str = manifest.to_str().unwrap();
    let out_dir = dir.join("artifacts");
    let out_str = out_dir.to_str().unwrap();

    let text = run_capture(&[
        "sweep",
        manifest_str,
        "--workers",
        "2",
        "--out",
        out_str,
    ])
    .unwrap();
    assert!(text.contains("sweep `cli-grid`: 4 scenarios"), "{text}");
    assert!(text.contains("sweep report — 4 scenarios"), "{text}");
    assert!(text.contains("deltas vs baseline"), "{text}");

    // --out writes the report and overlay artifacts.
    let report_text = std::fs::read_to_string(out_dir.join("report.json")).unwrap();
    let report = SweepReport::from_json_str(&report_text).expect("valid report");
    assert_eq!(report.scenarios.len(), 4);
    let overlay = std::fs::read_to_string(out_dir.join("cdf_overlay.csv")).unwrap();
    assert!(overlay.starts_with("scenario,resource,utilization,cumulative_fraction"));

    // --json mode emits exactly the report object and matches the file.
    let json = run_capture(&["sweep", manifest_str, "--json"]).unwrap();
    assert_eq!(json.lines().count(), 1);
    assert_eq!(json.trim(), report_text, "report bytes are worker-count- and mode-independent");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_rejects_bad_manifests() {
    let err = run_capture(&["sweep"]).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");

    let err = run_capture(&["sweep", "/nonexistent/grid.json"]).unwrap_err();
    assert_eq!(err.exit_code(), 4, "{err}");

    let dir = std::env::temp_dir();
    let path = dir.join(format!("sapsim-cli-badgrid-{}.json", std::process::id()));
    std::fs::write(&path, r#"{"policies": ["best-fit"]}"#).unwrap();
    let err = run_capture(&["sweep", path.to_str().unwrap()]).unwrap_err();
    assert_eq!(err.exit_code(), 5, "{err}");
    assert!(err.to_string().contains("unknown policy `best-fit`"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn export_then_import_roundtrip() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("sapsim-cli-test-{}.csv", std::process::id()));
    let path_str = path.to_str().expect("utf8 path");

    let text = run_capture(&[
        "export",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--anonymize",
        "42",
        path_str,
    ])
    .unwrap();
    assert!(text.contains("wrote"), "{text}");

    let text = run_capture(&["import", path_str, "--days", "1"]).unwrap();
    assert!(text.contains("loaded"));
    assert!(text.contains("vrops_hostsystem_cpu_contention_percentage"));
    assert!(text.contains("openstack_compute_instances_total"));

    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn simulate_with_obs_writes_logs_and_profile() {
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("sapsim-cli-obs-{}.jsonl", std::process::id()));
    let chrome = dir.join(format!("sapsim-cli-obs-{}.trace.json", std::process::id()));
    let jsonl_str = jsonl.to_str().expect("utf8 path");
    let chrome_str = chrome.to_str().expect("utf8 path");

    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--obs-out",
        jsonl_str,
        "--obs-chrome",
        chrome_str,
    ])
    .unwrap();
    assert!(text.contains("obs: wrote"), "{text}");
    assert!(text.contains("event-loop profile"), "{text}");
    assert!(text.contains("scrape"), "{text}");

    // The JSONL log round-trips through `obs summary`.
    let summary = run_capture(&["obs", "summary", jsonl_str]).unwrap();
    assert!(summary.contains("events buffered"), "{summary}");
    assert!(summary.contains("decisions:"), "{summary}");
    assert!(summary.contains("placed:"), "{summary}");
    assert!(summary.contains("placements:"), "{summary}");

    // And through `--prom` into Prometheus counter families.
    let prom = run_capture(&["obs", "summary", jsonl_str, "--prom"]).unwrap();
    assert!(prom.contains("# TYPE sapsim_placements counter"), "{prom}");

    // The Chrome trace is a JSON array of complete events.
    let trace = std::fs::read_to_string(&chrome).expect("trace written");
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.contains("\"ph\":\"X\""));

    std::fs::remove_file(&jsonl).expect("cleanup");
    std::fs::remove_file(&chrome).expect("cleanup");
}

#[test]
fn simulate_with_faults_prints_the_fault_summary() {
    // 30 failures/month over 1 day ≈ probability 1.0 per node: the fault
    // section is guaranteed to report activity.
    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--faults",
        "fail=30.0,downtime=2,straggler=0.5,slowdown=0.6,dropout=15.0,dropout-hours=3",
    ])
    .unwrap();
    assert!(text.contains("faults:"), "{text}");
    assert!(text.contains("host failures:"), "{text}");
    assert!(text.contains("evacuations:"), "{text}");
    assert!(text.contains("dropout windows"), "{text}");
    assert!(
        !text.contains("host failures: 0 "),
        "failures occurred: {text}"
    );
}

#[test]
fn simulate_rejects_bad_fault_specs() {
    let err = run_capture(&["simulate", "--faults", "no-such-key=1"]).unwrap_err();
    assert!(err.to_string().contains("faults"), "{err}");
    assert_eq!(err.exit_code(), 2, "inline syntax is a usage error");
    let err = run_capture(&["simulate", "--faults", "slowdown=0"]).unwrap_err();
    assert!(err.to_string().contains("slowdown"), "{err}");
    assert_eq!(err.exit_code(), 3, "invalid knob values are config errors");
}

#[test]
fn obs_summary_roundtrips_fault_events() {
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("sapsim-cli-faults-{}.jsonl", std::process::id()));
    let jsonl_str = jsonl.to_str().expect("utf8 path");

    run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--faults",
        "fail=30.0,downtime=2",
        "--obs-out",
        jsonl_str,
    ])
    .unwrap();

    let summary = run_capture(&["obs", "summary", jsonl_str]).unwrap();
    assert!(summary.contains("fault events:"), "{summary}");
    assert!(summary.contains("host_fail:"), "{summary}");

    std::fs::remove_file(&jsonl).expect("cleanup");
}

#[test]
fn obs_knobs_without_output_error() {
    let err = run_capture(&["simulate", "--obs-sample", "0.5"]).unwrap_err();
    assert!(err.to_string().contains("--obs-out"), "{err}");
}

#[test]
fn obs_summary_missing_file_errors() {
    let err = run_capture(&["obs", "summary", "/nonexistent/definitely-not.jsonl"]).unwrap_err();
    assert!(err.to_string().contains("cannot read"));
    assert_eq!(err.exit_code(), 4);
}

#[test]
fn tables_prints_all_three() {
    let text = run_capture(&["tables"]).unwrap();
    assert!(text.contains("Table 3"));
    assert!(text.contains("SAP (this work)"));
    assert!(text.contains("vrops_hostsystem_cpu_ready_milliseconds"));
    assert!(text.contains("1072"), "table 5 data present");
}

#[test]
fn import_missing_file_errors() {
    let err = run_capture(&["import", "/nonexistent/definitely-not-here.csv"]).unwrap_err();
    assert!(err.to_string().contains("cannot open"));
}

#[test]
fn simulate_snapshot_then_resume_reproduces_the_run() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("sapsim-cli-snap-{}.snapshot", std::process::id()));
    let snap_str = snap.to_str().expect("utf8 path");
    let base = &[
        "simulate", "--scale", "0.02", "--days", "1", "--no-warmup", "--seed", "7", "--json",
    ];

    let cold = run_capture(base).unwrap();
    let argv: Vec<&str> = base
        .iter()
        .copied()
        .chain(["--snapshot-at", "0.5", "--snapshot-out", snap_str])
        .collect();
    let capturing = run_capture(&argv).unwrap();
    assert_eq!(
        capturing, cold,
        "pausing to capture must not move the run summary"
    );
    let text = std::fs::read_to_string(&snap).expect("snapshot written");
    assert!(text.starts_with("{\"schema\":\"sapsim.snapshot/v1\""), "{text}");

    let resumed = run_capture(&["simulate", "--resume", snap_str, "--json"]).unwrap();
    assert_eq!(resumed, cold, "resume must land on the cold run's summary");

    // The human-readable resume path announces where it starts from.
    let human = run_capture(&["simulate", "--resume", snap_str]).unwrap();
    assert!(human.contains("resuming day 0.50 of 1"), "{human}");
    assert!(human.contains("placements:"), "{human}");

    std::fs::remove_file(&snap).expect("cleanup");
}

#[test]
fn shard_threads_is_execution_only_on_the_cli() {
    // At smoke scale the estate is a single region, so the partitioned
    // loop declines to engage — which is exactly the contract this pins:
    // `--shard-threads` parses, threads through, and never moves the
    // summary. (Multi-region byte-equality is pinned by the core and
    // integration shard-determinism suites.)
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("sapsim-cli-shard-{}.snapshot", std::process::id()));
    let snap_str = snap.to_str().expect("utf8 path");
    let base = &[
        "simulate", "--scale", "0.02", "--days", "1", "--no-warmup", "--seed", "7", "--json",
    ];
    let sequential = run_capture(base).unwrap();
    let argv: Vec<&str> = base.iter().copied().chain(["--shard-threads", "4"]).collect();
    let sharded = run_capture(&argv).unwrap();
    assert_eq!(
        sharded, sequential,
        "shard workers are execution-only and must not move the summary"
    );

    // `--resume` accepts the knob: it is never embedded in the snapshot.
    let argv: Vec<&str> = base
        .iter()
        .copied()
        .chain(["--snapshot-at", "0.5", "--snapshot-out", snap_str])
        .collect();
    run_capture(&argv).unwrap();
    let resumed =
        run_capture(&["simulate", "--resume", snap_str, "--shard-threads", "4", "--json"])
            .unwrap();
    assert_eq!(resumed, sequential, "sharded resume lands on the cold summary");
    std::fs::remove_file(&snap).expect("cleanup");
}

#[test]
fn snapshot_flags_must_come_in_pairs_and_not_with_resume() {
    let err = run_capture(&["simulate", "--snapshot-at", "0.5"]).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("--snapshot-out"), "{err}");

    let err = run_capture(&["simulate", "--snapshot-out", "x.snapshot"]).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");

    let err = run_capture(&[
        "simulate", "--resume", "x.snapshot", "--snapshot-at", "0.5", "--snapshot-out", "y",
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");

    let err = run_capture(&["simulate", "--snapshot-at", "nope", "--snapshot-out", "y"])
        .unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");

    // A capture instant past the horizon is a config error, not usage.
    let err = run_capture(&[
        "simulate", "--scale", "0.02", "--days", "1", "--no-warmup", "--snapshot-at", "5",
        "--snapshot-out", "never-written.snapshot",
    ])
    .unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
}

#[test]
fn resume_rejects_config_shaping_options() {
    // The conflict check fires before the file is even opened.
    let conflicts: [&[&str]; 6] = [
        &["--days", "3"],
        &["--seed", "9"],
        &["--policy", "spread"],
        &["--no-drs"],
        &["--no-warmup"],
        &["--progress"],
    ];
    for conflicting in conflicts {
        let mut argv = vec!["simulate", "--resume", "missing.snapshot"];
        argv.extend(conflicting.iter());
        let err = run_capture(&argv).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--resume"), "{err}");
    }
}

#[test]
fn corrupt_snapshots_fail_with_typed_exit_codes() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("sapsim-cli-corrupt-{}.snapshot", std::process::id()));
    let snap_str = snap.to_str().expect("utf8 path");
    run_capture(&[
        "simulate", "--scale", "0.02", "--days", "1", "--no-warmup", "--seed", "7",
        "--snapshot-at", "0.5", "--snapshot-out", snap_str, "--json",
    ])
    .unwrap();
    let good = std::fs::read_to_string(&snap).unwrap();

    // Missing file: I/O.
    let err = run_capture(&["simulate", "--resume", "/nonexistent/x.snapshot"]).unwrap_err();
    assert_eq!(err.exit_code(), 4, "{err}");

    // Truncation, schema drift, and hash tampering: data errors.
    let header_len = good.find('\n').unwrap();
    let cases: [String; 4] = [
        good[..header_len].to_string(),
        good.replacen("sapsim.snapshot/v1", "sapsim.snapshot/v0", 1),
        good.replacen(&good[..header_len], "", 1),
        {
            let mut tampered = good.clone();
            tampered.truncate(good.len() - good.len() / 3);
            tampered
        },
    ];
    for (i, case) in cases.iter().enumerate() {
        std::fs::write(&snap, case).unwrap();
        let err = run_capture(&["simulate", "--resume", snap_str]).unwrap_err();
        assert_eq!(err.exit_code(), 5, "case {i}: {err}");
    }

    std::fs::remove_file(&snap).expect("cleanup");
}

#[test]
fn resume_requires_restating_the_fault_spec() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("sapsim-cli-refault-{}.snapshot", std::process::id()));
    let snap_str = snap.to_str().expect("utf8 path");
    let spec = "fail=30.0,downtime=2";
    let base = &[
        "simulate", "--scale", "0.02", "--days", "1", "--no-warmup", "--seed", "7", "--faults",
        spec, "--json",
    ];
    let cold = run_capture(base).unwrap();
    let argv: Vec<&str> = base
        .iter()
        .copied()
        .chain(["--snapshot-at", "0.5", "--snapshot-out", snap_str])
        .collect();
    run_capture(&argv).unwrap();

    // Resuming without restating the spec (or with a different one) is a
    // configuration error; restating it reproduces the cold run.
    let err = run_capture(&["simulate", "--resume", snap_str]).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
    assert!(err.to_string().contains("restate"), "{err}");
    let err = run_capture(&["simulate", "--resume", snap_str, "--faults", "fail=1.0"])
        .unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
    let resumed =
        run_capture(&["simulate", "--resume", snap_str, "--faults", spec, "--json"]).unwrap();
    assert_eq!(resumed, cold);

    std::fs::remove_file(&snap).expect("cleanup");
}
