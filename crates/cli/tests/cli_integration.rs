//! CLI integration: drive every subcommand through the library entry
//! point, including an export → import round trip through a temp file.

use sapsim_cli::run_to;

fn run_capture(parts: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run_to(&argv, &mut out).map(|()| String::from_utf8(out).expect("utf8"))
}

#[test]
fn help_prints_usage() {
    let text = run_capture(&["help"]).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
    // No command at all also prints usage.
    let text = run_capture(&[]).unwrap();
    assert!(text.contains("USAGE"));
}

#[test]
fn unknown_command_errors() {
    let err = run_capture(&["frobnicate"]).unwrap_err();
    assert!(err.contains("frobnicate"));
}

#[test]
fn simulate_prints_headline_findings() {
    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
    ])
    .unwrap();
    assert!(text.contains("hypervisors"), "{text}");
    assert!(text.contains("placements:"));
    assert!(text.contains("cpu:"));
    assert!(text.contains("memory:"));
    assert!(text.contains("contention:"));
}

#[test]
fn simulate_rejects_bad_arguments() {
    assert!(run_capture(&["simulate", "--scale", "9"]).is_err());
    assert!(run_capture(&["simulate", "--policy", "nope"]).is_err());
    assert!(run_capture(&["simulate", "stray-positional"]).is_err());
    assert!(run_capture(&["simulate", "--bogus"]).is_err());
}

#[test]
fn export_then_import_roundtrip() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("sapsim-cli-test-{}.csv", std::process::id()));
    let path_str = path.to_str().expect("utf8 path");

    let text = run_capture(&[
        "export",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--anonymize",
        "42",
        path_str,
    ])
    .unwrap();
    assert!(text.contains("wrote"), "{text}");

    let text = run_capture(&["import", path_str, "--days", "1"]).unwrap();
    assert!(text.contains("loaded"));
    assert!(text.contains("vrops_hostsystem_cpu_contention_percentage"));
    assert!(text.contains("openstack_compute_instances_total"));

    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn simulate_with_obs_writes_logs_and_profile() {
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("sapsim-cli-obs-{}.jsonl", std::process::id()));
    let chrome = dir.join(format!("sapsim-cli-obs-{}.trace.json", std::process::id()));
    let jsonl_str = jsonl.to_str().expect("utf8 path");
    let chrome_str = chrome.to_str().expect("utf8 path");

    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--obs-out",
        jsonl_str,
        "--obs-chrome",
        chrome_str,
    ])
    .unwrap();
    assert!(text.contains("obs: wrote"), "{text}");
    assert!(text.contains("event-loop profile"), "{text}");
    assert!(text.contains("scrape"), "{text}");

    // The JSONL log round-trips through `obs summary`.
    let summary = run_capture(&["obs", "summary", jsonl_str]).unwrap();
    assert!(summary.contains("events buffered"), "{summary}");
    assert!(summary.contains("decisions:"), "{summary}");
    assert!(summary.contains("placed:"), "{summary}");
    assert!(summary.contains("placements:"), "{summary}");

    // And through `--prom` into Prometheus counter families.
    let prom = run_capture(&["obs", "summary", jsonl_str, "--prom"]).unwrap();
    assert!(prom.contains("# TYPE sapsim_placements counter"), "{prom}");

    // The Chrome trace is a JSON array of complete events.
    let trace = std::fs::read_to_string(&chrome).expect("trace written");
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.contains("\"ph\":\"X\""));

    std::fs::remove_file(&jsonl).expect("cleanup");
    std::fs::remove_file(&chrome).expect("cleanup");
}

#[test]
fn simulate_with_faults_prints_the_fault_summary() {
    // 30 failures/month over 1 day ≈ probability 1.0 per node: the fault
    // section is guaranteed to report activity.
    let text = run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--faults",
        "fail=30.0,downtime=2,straggler=0.5,slowdown=0.6,dropout=15.0,dropout-hours=3",
    ])
    .unwrap();
    assert!(text.contains("faults:"), "{text}");
    assert!(text.contains("host failures:"), "{text}");
    assert!(text.contains("evacuations:"), "{text}");
    assert!(text.contains("dropout windows"), "{text}");
    assert!(
        !text.contains("host failures: 0 "),
        "failures occurred: {text}"
    );
}

#[test]
fn simulate_rejects_bad_fault_specs() {
    let err = run_capture(&["simulate", "--faults", "no-such-key=1"]).unwrap_err();
    assert!(err.contains("faults"), "{err}");
    let err = run_capture(&["simulate", "--faults", "slowdown=0"]).unwrap_err();
    assert!(err.contains("slowdown"), "{err}");
}

#[test]
fn obs_summary_roundtrips_fault_events() {
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("sapsim-cli-faults-{}.jsonl", std::process::id()));
    let jsonl_str = jsonl.to_str().expect("utf8 path");

    run_capture(&[
        "simulate",
        "--scale",
        "0.02",
        "--days",
        "1",
        "--no-warmup",
        "--seed",
        "3",
        "--faults",
        "fail=30.0,downtime=2",
        "--obs-out",
        jsonl_str,
    ])
    .unwrap();

    let summary = run_capture(&["obs", "summary", jsonl_str]).unwrap();
    assert!(summary.contains("fault events:"), "{summary}");
    assert!(summary.contains("host_fail:"), "{summary}");

    std::fs::remove_file(&jsonl).expect("cleanup");
}

#[test]
fn obs_knobs_without_output_error() {
    let err = run_capture(&["simulate", "--obs-sample", "0.5"]).unwrap_err();
    assert!(err.contains("--obs-out"), "{err}");
}

#[test]
fn obs_summary_missing_file_errors() {
    let err = run_capture(&["obs", "summary", "/nonexistent/definitely-not.jsonl"]).unwrap_err();
    assert!(err.contains("cannot read"));
}

#[test]
fn tables_prints_all_three() {
    let text = run_capture(&["tables"]).unwrap();
    assert!(text.contains("Table 3"));
    assert!(text.contains("SAP (this work)"));
    assert!(text.contains("vrops_hostsystem_cpu_ready_milliseconds"));
    assert!(text.contains("1072"), "table 5 data present");
}

#[test]
fn import_missing_file_errors() {
    let err = run_capture(&["import", "/nonexistent/definitely-not-here.csv"]).unwrap_err();
    assert!(err.contains("cannot open"));
}
