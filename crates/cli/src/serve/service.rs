//! The protocol ↔ engine bridge.
//!
//! [`Service`] owns one live [`PlacementEngine`] plus the dry-run
//! transaction ledger, and [`Service::execute`] is the *single* code
//! path that turns an [`ApiRequest`] into an [`ApiResponse`]. The
//! offline applier (`sapsim serve --script`) calls it directly; the
//! server's writer thread calls it for every mutation; the server's
//! worker threads call the same [`plan_dry_run`] helper on snapshot
//! forks. One path, therefore byte-identical responses online and
//! offline — which is what lets CI diff a served session against an
//! offline replay.

use sapsim_api::{
    txn_token, ApiRequest, ApiResponse, CommitResponse, EvacuateResponse, Moved, PlaceResponse,
    Placement, ProtocolError, ResizeOutcome, ResizeResponse, ShutdownResponse, StateResponse,
    VmClass,
};
use sapsim_core::{PlaceOutcome, PlaceSpec, PlacementEngine, ResizeResult, SimConfig, SimError};
use sapsim_topology::Resources;
use sapsim_workload::{VmId, WorkloadClass};
use std::collections::{HashMap, VecDeque};

/// Assumed lifetime for placements that do not declare one, feeding the
/// lifetime-aware weigher. Thirty days sits in the middle of the
/// paper's short-lived/long-lived split.
pub const DEFAULT_LIFETIME_DAYS: f64 = 30.0;

/// Most dry-run plans retained at once; the oldest are forgotten first
/// (their tokens then answer `commit` with `not-found`).
pub const PENDING_CAP: usize = 1024;

/// One registered dry-run plan awaiting `commit`.
#[derive(Debug, Clone)]
pub struct PendingTxn {
    /// Engine version the plan was computed against. A commit replays
    /// only if the engine still sits at this version.
    pub base_version: u64,
    /// The original (dry-run) request, replayed verbatim on commit.
    pub request: ApiRequest,
}

/// Token → plan ledger with FIFO eviction at [`PENDING_CAP`].
#[derive(Debug, Default)]
pub struct PendingMap {
    map: HashMap<String, PendingTxn>,
    order: VecDeque<String>,
}

impl PendingMap {
    /// Register a plan under its token, evicting the oldest entries
    /// beyond the cap. Re-planning the identical request at the same
    /// version yields the same token; re-registering it is a no-op.
    pub fn register(&mut self, token: String, txn: PendingTxn) {
        if self.map.insert(token.clone(), txn).is_none() {
            self.order.push_back(token);
        }
        while self.order.len() > PENDING_CAP {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    /// Consume a plan by token.
    pub fn take(&mut self, token: &str) -> Option<PendingTxn> {
        let txn = self.map.remove(token)?;
        self.order.retain(|t| t != token);
        Some(txn)
    }

    /// Number of plans currently retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no plans are retained.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The placement service: one live engine plus the dry-run ledger.
#[derive(Debug)]
pub struct Service {
    /// The live engine; mutated only through [`Service::execute`].
    pub engine: PlacementEngine,
    /// Dry-run plans awaiting commit.
    pub pending: PendingMap,
    /// Set once a `shutdown` request has been executed.
    pub shutdown: bool,
}

impl Service {
    /// Boot a service over the estate described by `cfg`.
    pub fn new(cfg: SimConfig) -> Result<Service, SimError> {
        Ok(Service {
            engine: PlacementEngine::new(cfg)?,
            pending: PendingMap::default(),
            shutdown: false,
        })
    }

    /// Execute one request against the live engine and return its wire
    /// response. This is the serialized-writer path: callers must
    /// guarantee mutual exclusion (the server funnels every call
    /// through one thread; the offline applier is single-threaded).
    pub fn execute(&mut self, request: &ApiRequest) -> ApiResponse {
        if is_dry_run(request) {
            let (response, registration) = plan_dry_run(&self.engine, request);
            if let Some((token, txn)) = registration {
                self.pending.register(token, txn);
            }
            return response;
        }
        match request {
            ApiRequest::Commit(commit) => {
                let id = commit.id.clone();
                let Some(plan) = self.pending.take(&commit.txn) else {
                    return ApiResponse::from_error(
                        &ProtocolError::NotFound(format!(
                            "unknown or expired txn `{}`",
                            commit.txn
                        )),
                        id,
                    );
                };
                if plan.base_version != self.engine.version() {
                    return ApiResponse::from_error(
                        &ProtocolError::Conflict(format!(
                            "engine moved from version {} to {} since the plan was made",
                            plan.base_version,
                            self.engine.version()
                        )),
                        id,
                    );
                }
                match apply_mutation(&mut self.engine, &plan.request) {
                    Ok(applied) => ApiResponse::Commit(
                        CommitResponse::new(commit.txn.clone(), applied).with_id(id),
                    ),
                    Err(e) => ApiResponse::from_error(&e, id),
                }
            }
            ApiRequest::State(state) => state_response(&self.engine, state.id.clone()),
            ApiRequest::Shutdown(req) => {
                self.shutdown = true;
                ApiResponse::Shutdown(ShutdownResponse::new().with_id(req.id.clone()))
            }
            live => match apply_mutation(&mut self.engine, live) {
                Ok(response) => response,
                Err(e) => ApiResponse::from_error(&e, live.client_id().map(str::to_string)),
            },
        }
    }
}

/// Whether a request asks for a plan rather than a live mutation.
pub fn is_dry_run(request: &ApiRequest) -> bool {
    match request {
        ApiRequest::Place(r) => r.dry_run,
        ApiRequest::Resize(r) => r.dry_run,
        ApiRequest::Evacuate(r) => r.dry_run,
        _ => false,
    }
}

/// Plan a dry-run request on a fork of `view` (which may be the live
/// engine or a published snapshot — forks of either are equivalent).
/// Returns the wire response and, on success, the `(token, plan)` pair
/// the caller must register with the writer before replying.
pub fn plan_dry_run(
    view: &PlacementEngine,
    request: &ApiRequest,
) -> (ApiResponse, Option<(String, PendingTxn)>) {
    let base = view.version();
    let mut fork = view.fork();
    match apply_mutation(&mut fork, request) {
        Err(e) => (
            ApiResponse::from_error(&e, request.client_id().map(str::to_string)),
            None,
        ),
        Ok(mut response) => {
            let token = txn_token(base, request);
            mark_dry_run(&mut response, base, token.clone());
            let registration = (
                token,
                PendingTxn {
                    base_version: base,
                    request: request.clone(),
                },
            );
            (response, Some(registration))
        }
    }
}

/// Build a `state` response from any engine view.
pub fn state_response(engine: &PlacementEngine, id: Option<String>) -> ApiResponse {
    let (nodes, active_nodes) = engine.node_counts();
    ApiResponse::State(
        StateResponse::new(
            engine.version(),
            engine.vm_count() as u64,
            nodes as u64,
            active_nodes as u64,
            engine.state_hash(),
        )
        .with_id(id),
    )
}

/// Apply a mutating request (place / resize / evacuate — the `dry_run`
/// flag is ignored; commit strips it by construction because the fork
/// and the live engine run the identical code). Bumps the engine
/// version once on success, so the response's `version` is the state
/// the mutation produced.
pub fn apply_mutation(
    engine: &mut PlacementEngine,
    request: &ApiRequest,
) -> Result<ApiResponse, ProtocolError> {
    match request {
        ApiRequest::Place(r) => {
            let az = match &r.az {
                Some(name) => Some(engine.az_by_name(name).ok_or_else(|| {
                    ProtocolError::NotFound(format!("unknown availability zone `{name}`"))
                })?),
                None => None,
            };
            let spec = PlaceSpec {
                resources: Resources::new(r.vcpus, r.memory_mib, r.disk_gib),
                class: workload_class(r.class),
                az,
                lifetime_days: r.lifetime_days.unwrap_or(DEFAULT_LIFETIME_DAYS),
            };
            let mut response = PlaceResponse::new(0).with_id(r.id.clone());
            for index in 0..r.count {
                match engine.place(&spec) {
                    PlaceOutcome::Placed { vm, node, retries } => {
                        let (node_name, bb, az_name) = engine.node_location(node);
                        response.push_placed(Placement {
                            vm: vm.0,
                            node: node_name,
                            bb,
                            az: az_name,
                            retries: u64::from(retries),
                        });
                    }
                    PlaceOutcome::NoCandidate => response.push_failed(index, "no-candidate"),
                    PlaceOutcome::Fragmented { .. } => response.push_failed(index, "fragmented"),
                }
            }
            engine.bump_version();
            response.version = engine.version();
            Ok(ApiResponse::Place(response))
        }
        ApiRequest::Resize(r) => {
            let vm = VmId(r.vm);
            let current = engine
                .vm_resources(vm)
                .ok_or_else(|| ProtocolError::NotFound(format!("unknown vm `{}`", r.vm)))?;
            let new = Resources::new(r.vcpus, r.memory_mib, r.disk_gib.unwrap_or(current.disk_gib));
            let result = engine.resize(vm, new);
            engine.bump_version();
            let version = engine.version();
            let response = match result {
                ResizeResult::UnknownVm => {
                    return Err(ProtocolError::NotFound(format!("unknown vm `{}`", r.vm)))
                }
                ResizeResult::InPlace { node } => {
                    ResizeResponse::new(version, r.vm, ResizeOutcome::InPlace)
                        .on_node(engine.node_location(node).0)
                }
                ResizeResult::Migrated { node } => {
                    ResizeResponse::new(version, r.vm, ResizeOutcome::Migrated)
                        .on_node(engine.node_location(node).0)
                }
                ResizeResult::Failed => ResizeResponse::new(version, r.vm, ResizeOutcome::Failed),
            };
            Ok(ApiResponse::Resize(response.with_id(r.id.clone())))
        }
        ApiRequest::Evacuate(r) => {
            let node = engine
                .node_by_name(&r.node)
                .ok_or_else(|| ProtocolError::NotFound(format!("unknown node `{}`", r.node)))?;
            let report = engine.evacuate(node);
            engine.bump_version();
            let mut response =
                EvacuateResponse::new(engine.version(), r.node.clone()).with_id(r.id.clone());
            for (vm, to) in report.moved {
                response.moved.push(Moved {
                    vm: vm.0,
                    node: engine.node_location(to).0,
                });
            }
            response.lost = report.lost.iter().map(|vm| vm.0).collect();
            Ok(ApiResponse::Evacuate(response))
        }
        other => Err(ProtocolError::Internal(format!(
            "op `{}` is not a mutation",
            other.op()
        ))),
    }
}

/// Rewrite a successful mutation response into its dry-run form: plan
/// flag set, commit token attached, version pinned to the base the
/// plan was computed against (the fork's post-mutation bump is
/// hypothetical and must not leak).
pub fn mark_dry_run(response: &mut ApiResponse, base_version: u64, token: String) {
    match response {
        ApiResponse::Place(r) => {
            r.dry_run = true;
            r.txn = Some(token);
            r.version = base_version;
        }
        ApiResponse::Resize(r) => {
            r.dry_run = true;
            r.txn = Some(token);
            r.version = base_version;
        }
        ApiResponse::Evacuate(r) => {
            r.dry_run = true;
            r.txn = Some(token);
            r.version = base_version;
        }
        _ => {}
    }
}

/// Map the wire workload class onto the scheduler's.
pub fn workload_class(class: VmClass) -> WorkloadClass {
    match class {
        VmClass::GeneralPurpose => WorkloadClass::GeneralPurpose,
        VmClass::Hana => WorkloadClass::Hana,
        VmClass::CiFarm => WorkloadClass::CiFarm,
    }
}

/// Build the engine config for `serve` from already-parsed CLI knobs;
/// every other knob keeps its default (the engine ignores the
/// workload-generator fields anyway).
pub fn engine_config(
    scale: f64,
    seed: u64,
    policy: sapsim_scheduler::PolicyKind,
    granularity: sapsim_core::PlacementGranularity,
    overcommit: f64,
) -> Result<SimConfig, SimError> {
    let mut cfg = SimConfig::default();
    cfg.scale = scale;
    cfg.seed = seed;
    cfg.policy = policy;
    cfg.granularity = granularity;
    cfg.gp_cpu_overcommit = overcommit;
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapsim_api::{
        CommitRequest, EvacuateRequest, PlaceRequest, ResizeRequest, ShutdownRequest, StateRequest,
    };
    use sapsim_core::PlacementGranularity;
    use sapsim_scheduler::PolicyKind;

    fn small_service() -> Service {
        let cfg = engine_config(
            0.05,
            7,
            PolicyKind::PaperDefault,
            PlacementGranularity::BuildingBlock,
            4.0,
        )
        .expect("valid config");
        Service::new(cfg).expect("engine boots")
    }

    fn place(count: u64) -> ApiRequest {
        ApiRequest::Place(PlaceRequest::new(4, 16_384).with_count(count))
    }

    #[test]
    fn live_place_bumps_version_and_reports_locations() {
        let mut svc = small_service();
        let ApiResponse::Place(resp) = svc.execute(&place(3)) else {
            panic!("expected a place response");
        };
        assert!(!resp.dry_run);
        assert_eq!(resp.txn, None);
        assert_eq!(resp.version, 1);
        assert_eq!(resp.placed.len(), 3);
        assert!(resp.failed.is_empty());
        for p in &resp.placed {
            assert!(!p.node.is_empty() && !p.bb.is_empty() && !p.az.is_empty());
        }
        assert_eq!(svc.engine.vm_count(), 3);
    }

    #[test]
    fn dry_run_plans_do_not_mutate_until_committed() {
        let mut svc = small_service();
        let request = ApiRequest::Place(PlaceRequest::new(2, 8192).with_count(2).dry_run());
        let ApiResponse::Place(plan) = svc.execute(&request) else {
            panic!("expected a place plan");
        };
        assert!(plan.dry_run);
        assert_eq!(plan.version, 0, "plan cites its base version");
        let token = plan.txn.clone().expect("plan carries a token");
        assert_eq!(svc.engine.vm_count(), 0, "plan must not mutate");
        assert_eq!(svc.pending.len(), 1);

        let commit = ApiRequest::Commit(CommitRequest::new(token.clone()));
        let ApiResponse::Commit(applied) = svc.execute(&commit) else {
            panic!("expected a commit response");
        };
        assert_eq!(applied.txn, token);
        let ApiResponse::Place(inner) = applied.applied.as_ref() else {
            panic!("commit wraps the replayed place");
        };
        assert_eq!(inner.placed.len(), 2);
        assert_eq!(inner.version, 1);
        assert_eq!(svc.engine.vm_count(), 2);
        assert!(svc.pending.is_empty(), "token is consumed");

        // The plan predicted exactly what the commit did.
        assert_eq!(plan.placed, inner.placed);
    }

    #[test]
    fn commit_after_interleaved_write_is_a_conflict() {
        let mut svc = small_service();
        let plan_req = ApiRequest::Place(PlaceRequest::new(2, 8192).dry_run());
        let ApiResponse::Place(plan) = svc.execute(&plan_req) else {
            panic!("expected a plan");
        };
        let token = plan.txn.unwrap();

        // Another writer lands first.
        svc.execute(&place(1));

        let resp = svc.execute(&ApiRequest::Commit(CommitRequest::new(token.clone())));
        let ApiResponse::Error(err) = resp else {
            panic!("expected a conflict");
        };
        assert_eq!(err.code, "conflict");
        assert_eq!(err.status, 409);

        // The token was consumed by the failed commit.
        let resp = svc.execute(&ApiRequest::Commit(CommitRequest::new(token)));
        let ApiResponse::Error(err) = resp else {
            panic!("expected not-found");
        };
        assert_eq!(err.code, "not-found");
    }

    #[test]
    fn unknown_entities_are_not_found() {
        let mut svc = small_service();
        let cases = [
            ApiRequest::Place(PlaceRequest::new(1, 1024).in_az("az-z")),
            ApiRequest::Resize(ResizeRequest::new(999, 2, 2048)),
            ApiRequest::Evacuate(EvacuateRequest::new("no-such-node")),
            ApiRequest::Commit(CommitRequest::new("00000000000000aa")),
        ];
        for request in cases {
            let ApiResponse::Error(err) = svc.execute(&request) else {
                panic!("expected an error for {}", request.op());
            };
            assert_eq!(err.code, "not-found", "{}", err.error);
        }
        assert_eq!(svc.engine.version(), 0, "failed requests must not bump");
    }

    #[test]
    fn resize_and_evacuate_round_trip_through_the_service() {
        let mut svc = small_service();
        let ApiResponse::Place(placed) = svc.execute(&place(2)) else {
            panic!();
        };
        let vm = placed.placed[0].vm;
        let node = placed.placed[0].node.clone();

        let ApiResponse::Resize(resized) =
            svc.execute(&ApiRequest::Resize(ResizeRequest::new(vm, 8, 32_768)))
        else {
            panic!("expected a resize response");
        };
        assert_eq!(resized.vm, vm);
        assert_eq!(
            resized.node.is_some(),
            resized.outcome != ResizeOutcome::Failed,
            "node is reported exactly when the resize landed"
        );

        let ApiResponse::Evacuate(evac) =
            svc.execute(&ApiRequest::Evacuate(EvacuateRequest::new(node.clone())))
        else {
            panic!("expected an evacuate response");
        };
        assert_eq!(evac.node, node);

        let ApiResponse::State(state) =
            svc.execute(&ApiRequest::State(StateRequest::new()))
        else {
            panic!("expected state");
        };
        assert_eq!(state.version, 3);
        assert_eq!(state.hash.len(), 16);
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let mut svc = small_service();
        let ApiResponse::Shutdown(resp) =
            svc.execute(&ApiRequest::Shutdown(ShutdownRequest::new().with_id("bye")))
        else {
            panic!("expected a shutdown ack");
        };
        assert!(resp.ok);
        assert_eq!(resp.id.as_deref(), Some("bye"));
        assert!(svc.shutdown);
    }

    #[test]
    fn plan_on_a_snapshot_matches_plan_on_the_live_engine() {
        let mut svc = small_service();
        svc.execute(&place(2));
        let snapshot = svc.engine.fork();
        let request = ApiRequest::Place(PlaceRequest::new(2, 4096).dry_run());
        let (from_snapshot, reg_a) = plan_dry_run(&snapshot, &request);
        let (from_live, reg_b) = plan_dry_run(&svc.engine, &request);
        assert_eq!(from_snapshot.to_json_line(), from_live.to_json_line());
        assert_eq!(reg_a.map(|r| r.0), reg_b.map(|r| r.0), "same token");
    }

    #[test]
    fn pending_map_evicts_fifo_beyond_cap() {
        let mut pending = PendingMap::default();
        let request = ApiRequest::State(StateRequest::new());
        for i in 0..(PENDING_CAP + 10) {
            pending.register(
                format!("{i:016x}"),
                PendingTxn {
                    base_version: i as u64,
                    request: request.clone(),
                },
            );
        }
        assert_eq!(pending.len(), PENDING_CAP);
        assert!(pending.take("0000000000000000").is_none(), "oldest evicted");
        assert!(pending.take(&format!("{:016x}", PENDING_CAP + 9)).is_some());
    }
}
