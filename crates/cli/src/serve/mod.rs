//! `sapsim serve` — the incremental scheduler as a long-running,
//! versioned placement service.
//!
//! One process, three modes:
//!
//! * **Server** (default): load the paper estate, keep a live
//!   [`PlacementEngine`] behind a single writer thread, and answer
//!   `sapsim.api/v1` requests over hand-rolled HTTP/1.1
//!   (`POST /v1/request`) and an optional JSONL-over-TCP fast path
//!   (`--tcp`) that shares the same codec.
//! * **Offline applier** (`--script FILE` without `--connect`): execute
//!   the same envelope lines against an in-process [`Service`] and
//!   print the same response bytes — the differential oracle CI diffs
//!   a served session against.
//! * **Scripted client** (`--connect ADDR` / `--connect-tcp ADDR` with
//!   `--script FILE`): drive a running server and print each response.
//!
//! Concurrency model: worker threads answer reads (`state`, dry-run
//! planning) from a published snapshot fork; every mutation and every
//! commit is funneled through one writer thread that owns the live
//! engine, so interleaved what-ifs can never corrupt state — a commit
//! whose base version has been overtaken is answered `conflict`, never
//! applied. The writer republishes the snapshot after each write.

pub mod client;
pub mod http;
pub mod service;

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_api::{ApiRequest, ApiResponse, ProtocolError, ShutdownResponse};
use sapsim_core::{PlacementEngine, PlacementGranularity, SimConfig};
use sapsim_obs::{Histogram, MetricKey, MetricsRegistry};
use sapsim_scheduler::PolicyKind;
use sapsim_telemetry::exposition::{render_metrics, PromData, PromFamily, PromHistogram};
use service::{PendingTxn, Service};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Value-taking options `sapsim serve` understands.
pub const VALUE_OPTIONS: &[&str] = &[
    "listen",
    "tcp",
    "workers",
    "max-body-kib",
    "read-timeout-ms",
    "scale",
    "seed",
    "policy",
    "granularity",
    "overcommit",
    "script",
    "connect",
    "connect-tcp",
];

/// Boolean flags `sapsim serve` understands.
pub const BOOL_FLAGS: &[&str] = &["strict"];

/// Entry point for `sapsim serve`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, VALUE_OPTIONS, BOOL_FLAGS)?;
    if let Some(addr) = parsed.get("connect") {
        return client::run_http(addr, require_script(&parsed)?, out);
    }
    if let Some(addr) = parsed.get("connect-tcp") {
        return client::run_tcp(addr, require_script(&parsed)?, out);
    }
    let cfg = config_from(&parsed)?;
    let strict = parsed.flag("strict");
    if let Some(script) = parsed.get("script") {
        return run_offline(cfg, script, strict, out);
    }
    run_server(cfg, &parsed, out)
}

/// The engine configuration from serve's CLI knobs.
fn config_from(parsed: &Parsed) -> Result<SimConfig, CliError> {
    let policy = parsed
        .get("policy")
        .unwrap_or("paper-default")
        .parse::<PolicyKind>()
        .map_err(CliError::Usage)?;
    let granularity = parsed
        .get("granularity")
        .unwrap_or("bb")
        .parse::<PlacementGranularity>()
        .map_err(CliError::Usage)?;
    let cfg = service::engine_config(
        parsed.get_parsed("scale", 0.05)?,
        parsed.get_parsed("seed", 0u64)?,
        policy,
        granularity,
        parsed.get_parsed("overcommit", 4.0)?,
    )?;
    Ok(cfg)
}

fn require_script(parsed: &Parsed) -> Result<&str, CliError> {
    parsed.get("script").ok_or_else(|| {
        CliError::Usage("`--connect`/`--connect-tcp` requires `--script FILE`".into())
    })
}

/// Offline applier: the same [`Service::execute`] path the server's
/// writer runs, printed line for line. A served session replaying the
/// same script produces byte-identical envelopes and the same final
/// state hash.
fn run_offline(
    cfg: SimConfig,
    script: &str,
    strict: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut service = Service::new(cfg)?;
    for line in client::read_script(script)? {
        let response = match ApiRequest::parse_line(&line, strict) {
            Ok(request) => service.execute(&request),
            Err(e) => ApiResponse::from_error(&e, None),
        };
        writeln!(out, "{}", response.to_json_line())?;
        if service.shutdown {
            break;
        }
    }
    Ok(())
}

/// State shared by the accept loops and worker threads.
struct Shared {
    /// The published engine view, republished by the writer after every
    /// applied mutation. Reads clone the `Arc` and drop the lock.
    snapshot: RwLock<Arc<PlacementEngine>>,
    /// Request latency histograms, throughput counters, version gauge.
    metrics: Mutex<MetricsRegistry>,
    /// Reject unknown envelope fields.
    strict: bool,
    /// Largest accepted request body / JSONL line, bytes.
    max_body: usize,
    /// Per-connection socket read budget (the slow-loris bound).
    read_timeout: Duration,
    /// Raised by `shutdown`; accept loops drain and exit.
    shutdown: AtomicBool,
}

/// Work for the serialized writer thread.
enum WriteMsg {
    /// Apply a live mutation or commit and reply with its response.
    Apply {
        request: ApiRequest,
        reply: mpsc::SyncSender<ApiResponse>,
    },
    /// Register a worker-planned dry-run; acked so the plan is durable
    /// before the client sees its token.
    Register {
        token: String,
        txn: PendingTxn,
        reply: mpsc::SyncSender<()>,
    },
}

/// Which front end accepted a connection.
#[derive(Clone, Copy)]
enum ConnKind {
    Http,
    Jsonl,
}

struct Conn {
    kind: ConnKind,
    stream: TcpStream,
}

/// Boot the estate and serve until a `shutdown` request lands.
fn run_server(cfg: SimConfig, parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let listen = parsed.get("listen").unwrap_or("127.0.0.1:7070");
    let workers = parsed.get_parsed("workers", 4usize)?.max(1);
    let max_body = parsed.get_parsed("max-body-kib", 64usize)?.max(1) * 1024;
    let read_timeout = Duration::from_millis(parsed.get_parsed("read-timeout-ms", 2000u64)?.max(1));

    let service = Service::new(cfg)?;
    let (total_nodes, _) = service.engine.node_counts();

    let listener = TcpListener::bind(listen)
        .map_err(|e| CliError::Io(format!("cannot listen on `{listen}`: {e}")))?;
    listener.set_nonblocking(true)?;
    let http_addr = listener.local_addr()?;
    let tcp_listener = match parsed.get("tcp") {
        Some(addr) => {
            let l = TcpListener::bind(addr)
                .map_err(|e| CliError::Io(format!("cannot listen on `{addr}`: {e}")))?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };

    let shared = Arc::new(Shared {
        snapshot: RwLock::new(Arc::new(service.engine.fork())),
        metrics: Mutex::new(MetricsRegistry::new()),
        strict: parsed.flag("strict"),
        max_body,
        read_timeout,
        shutdown: AtomicBool::new(false),
    });

    writeln!(
        out,
        "serve: estate ready — {total_nodes} nodes at version 0"
    )?;
    match &tcp_listener {
        Some(l) => writeln!(
            out,
            "serve: http on {http_addr}, jsonl-tcp on {} ({workers} workers)",
            l.local_addr()?
        )?,
        None => writeln!(out, "serve: http on {http_addr} ({workers} workers)")?,
    }
    out.flush()?;

    let (write_tx, write_rx) = mpsc::channel::<WriteMsg>();
    let writer = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || writer_loop(service, shared, write_rx))
    };

    let (conn_tx, conn_rx) = mpsc::channel::<Conn>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let mut worker_handles = Vec::new();
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let conn_rx = Arc::clone(&conn_rx);
        let write_tx = write_tx.clone();
        worker_handles.push(thread::spawn(move || worker_loop(shared, conn_rx, write_tx)));
    }

    let tcp_accept = tcp_listener.map(|l| {
        let shared = Arc::clone(&shared);
        let conn_tx = conn_tx.clone();
        thread::spawn(move || accept_loop(l, ConnKind::Jsonl, conn_tx, shared))
    });

    accept_loop(listener, ConnKind::Http, conn_tx, Arc::clone(&shared));
    if let Some(handle) = tcp_accept {
        let _ = handle.join();
    }
    // All senders are gone: workers drain the queue and exit.
    for handle in worker_handles {
        let _ = handle.join();
    }
    drop(write_tx);
    let _ = writer.join();

    let final_view = shared.snapshot.read().expect("snapshot lock").clone();
    writeln!(
        out,
        "serve: shut down at version {} with {} vms (state {})",
        final_view.version(),
        final_view.vm_count(),
        final_view.state_hash()
    )?;
    Ok(())
}

/// Accept connections until shutdown; non-blocking with a short poll so
/// the `shutdown` flag is honored without a wake-up connection.
fn accept_loop(
    listener: TcpListener,
    kind: ConnKind,
    conn_tx: mpsc::Sender<Conn>,
    shared: Arc<Shared>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = conn_tx.send(Conn { kind, stream });
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The single mutating thread: owns the live [`Service`], applies
/// mutations and commits in arrival order, republishes the snapshot.
fn writer_loop(mut service: Service, shared: Arc<Shared>, rx: mpsc::Receiver<WriteMsg>) {
    for msg in rx {
        match msg {
            WriteMsg::Apply { request, reply } => {
                let response = service.execute(&request);
                *shared.snapshot.write().expect("snapshot lock") =
                    Arc::new(service.engine.fork());
                if service.shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                }
                let _ = reply.send(response);
            }
            WriteMsg::Register { token, txn, reply } => {
                service.pending.register(token, txn);
                let _ = reply.send(());
            }
        }
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    conn_rx: Arc<Mutex<mpsc::Receiver<Conn>>>,
    write_tx: mpsc::Sender<WriteMsg>,
) {
    loop {
        let conn = {
            let guard = conn_rx.lock().expect("connection queue lock");
            guard.recv()
        };
        let Ok(conn) = conn else { break };
        match conn.kind {
            ConnKind::Http => handle_http(&shared, &write_tx, conn.stream),
            ConnKind::Jsonl => handle_jsonl(&shared, &write_tx, conn.stream),
        }
    }
}

/// One HTTP exchange: route, answer, close.
fn handle_http(shared: &Shared, write_tx: &mpsc::Sender<WriteMsg>, mut stream: TcpStream) {
    if http::arm_timeout(&stream, shared.read_timeout).is_err() {
        return;
    }
    let request = match http::read_request(&mut stream, shared.max_body) {
        Ok(request) => request,
        Err(e) => {
            record_protocol_error(shared, &e);
            let response = ApiResponse::from_error(&e, None);
            let _ = http::write_response(
                &mut stream,
                response.http_status(),
                "application/json",
                &response.to_json_line(),
            );
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::write_response(&mut stream, 200, "text/plain", "ok\n");
        }
        ("GET", "/metrics") => {
            let page = render_prom(&shared.metrics.lock().expect("metrics lock"));
            let _ = http::write_response(&mut stream, 200, "text/plain; version=0.0.4", &page);
        }
        ("GET", "/v1/state") => {
            let started = Instant::now();
            let snapshot = shared.snapshot.read().expect("snapshot lock").clone();
            let response = service::state_response(&snapshot, None);
            observe(shared, "state", &response, started.elapsed());
            let _ = http::write_response(
                &mut stream,
                response.http_status(),
                "application/json",
                &response.to_json_line(),
            );
        }
        ("POST", "/v1/request") => {
            let body = String::from_utf8_lossy(&request.body).into_owned();
            let response = answer_line(shared, write_tx, &body);
            let _ = http::write_response(
                &mut stream,
                response.http_status(),
                "application/json",
                &response.to_json_line(),
            );
        }
        (_, "/healthz" | "/metrics" | "/v1/state" | "/v1/request") => {
            let err = ProtocolError::MethodNotAllowed(format!(
                "method `{}` not allowed on `{}`",
                request.method, request.path
            ));
            record_protocol_error(shared, &err);
            let response = ApiResponse::from_error(&err, None);
            let _ = http::write_response(
                &mut stream,
                response.http_status(),
                "application/json",
                &response.to_json_line(),
            );
        }
        (_, path) => {
            let err = ProtocolError::NotFound(format!("no route `{path}`"));
            record_protocol_error(shared, &err);
            let response = ApiResponse::from_error(&err, None);
            let _ = http::write_response(
                &mut stream,
                response.http_status(),
                "application/json",
                &response.to_json_line(),
            );
        }
    }
}

/// The JSONL-over-TCP fast path: a persistent connection, one request
/// envelope per line, one response envelope per line, same codec and
/// same dispatch as HTTP.
fn handle_jsonl(shared: &Shared, write_tx: &mpsc::Sender<WriteMsg>, stream: TcpStream) {
    if http::arm_timeout(&stream, shared.read_timeout).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_jsonl_line(&mut reader, shared.max_body) {
            Ok(None) => break,
            Ok(Some(line)) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let response = answer_line(shared, write_tx, line);
                let closing = matches!(response, ApiResponse::Shutdown(_));
                if writeln!(writer, "{}", response.to_json_line())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                if closing {
                    break;
                }
            }
            Err(e) => {
                record_protocol_error(shared, &e);
                let response = ApiResponse::from_error(&e, None);
                let _ = writeln!(writer, "{}", response.to_json_line());
                break;
            }
        }
    }
}

/// Read one `\n`-terminated line with a byte cap; `Ok(None)` on clean
/// EOF before any byte.
fn read_jsonl_line(
    reader: &mut impl BufRead,
    cap: usize,
) -> Result<Option<String>, ProtocolError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte).map_err(http::io_to_protocol)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ProtocolError::Malformed(
                "connection closed mid-line".into(),
            ));
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > cap {
            return Err(ProtocolError::TooLarge {
                limit: cap,
                got: buf.len(),
            });
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtocolError::Malformed("request line is not UTF-8".into()))
}

/// Parse one envelope line, dispatch it, and record metrics.
fn answer_line(shared: &Shared, write_tx: &mpsc::Sender<WriteMsg>, line: &str) -> ApiResponse {
    let started = Instant::now();
    let (op, response) = match ApiRequest::parse_line(line, shared.strict) {
        Ok(request) => {
            let op = request.op();
            (op, dispatch(shared, write_tx, request))
        }
        Err(e) => ("invalid", ApiResponse::from_error(&e, None)),
    };
    observe(shared, op, &response, started.elapsed());
    response
}

/// Route one parsed request: dry-runs plan on the snapshot and register
/// with the writer; mutations and commits go *through* the writer;
/// state and shutdown answer from the snapshot.
fn dispatch(shared: &Shared, write_tx: &mpsc::Sender<WriteMsg>, request: ApiRequest) -> ApiResponse {
    if service::is_dry_run(&request) {
        let snapshot = shared.snapshot.read().expect("snapshot lock").clone();
        let (response, registration) = service::plan_dry_run(&snapshot, &request);
        if let Some((token, txn)) = registration {
            let (ack_tx, ack_rx) = mpsc::sync_channel(1);
            if write_tx
                .send(WriteMsg::Register {
                    token,
                    txn,
                    reply: ack_tx,
                })
                .is_ok()
            {
                // The plan must be registered before the client can
                // commit it; wait for the writer's ack.
                let _ = ack_rx.recv();
            }
        }
        return response;
    }
    if request.is_mutation() {
        let id = request.client_id().map(str::to_string);
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if write_tx
            .send(WriteMsg::Apply {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            return ApiResponse::from_error(
                &ProtocolError::Internal("writer thread is gone".into()),
                id,
            );
        }
        return reply_rx.recv().unwrap_or_else(|_| {
            ApiResponse::from_error(
                &ProtocolError::Internal("writer thread dropped the request".into()),
                id,
            )
        });
    }
    match request {
        ApiRequest::State(r) => {
            let snapshot = shared.snapshot.read().expect("snapshot lock").clone();
            service::state_response(&snapshot, r.id.clone())
        }
        ApiRequest::Shutdown(r) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            ApiResponse::Shutdown(ShutdownResponse::new().with_id(r.id.clone()))
        }
        other => ApiResponse::from_error(
            &ProtocolError::Internal(format!("unroutable op `{}`", other.op())),
            None,
        ),
    }
}

/// Record one answered request: latency histogram and throughput
/// counters per op, error counter per code, placements counter, and
/// the engine-version gauge.
fn observe(shared: &Shared, op: &'static str, response: &ApiResponse, elapsed: Duration) {
    let mut metrics = shared.metrics.lock().expect("metrics lock");
    metrics.counter_with("serve_requests_total", "op", op, 1);
    metrics.observe_with(
        "serve_request_us",
        "op",
        op,
        u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
    );
    match response {
        ApiResponse::Error(e) => metrics.counter_with("serve_errors_total", "code", &e.code, 1),
        ApiResponse::Place(r) if !r.dry_run => {
            metrics.counter("serve_placements_total", r.placed.len() as u64);
            metrics.gauge("serve_version", r.version as f64);
        }
        ApiResponse::Resize(r) if !r.dry_run => metrics.gauge("serve_version", r.version as f64),
        ApiResponse::Evacuate(r) if !r.dry_run => metrics.gauge("serve_version", r.version as f64),
        ApiResponse::Commit(r) => {
            if let ApiResponse::Place(inner) = r.applied.as_ref() {
                metrics.counter("serve_placements_total", inner.placed.len() as u64);
            }
        }
        _ => {}
    }
}

/// Record a protocol failure that never reached dispatch (bad head,
/// oversized body, slow-loris timeout).
fn record_protocol_error(shared: &Shared, err: &ProtocolError) {
    let mut metrics = shared.metrics.lock().expect("metrics lock");
    metrics.counter_with("serve_errors_total", "code", err.code(), 1);
}

/// The `/metrics` page: the registry rendered through the shared
/// Prometheus exposition renderer. `BTreeMap` key order means
/// consecutive entries with the same name form one family; the top
/// histogram bucket (upper bound `u64::MAX`) is dropped because the
/// renderer's mandatory `le="+Inf"` sample already carries the total.
fn render_prom(registry: &MetricsRegistry) -> String {
    let hists: Vec<(&MetricKey, &Histogram)> = registry.histograms().collect();
    let cumulative: Vec<Vec<(f64, u64)>> = hists
        .iter()
        .map(|(_, h)| {
            let mut cum = 0u64;
            h.buckets()
                .filter_map(|(ub, n)| {
                    cum += n;
                    (ub != u64::MAX).then_some((ub as f64, cum))
                })
                .collect()
        })
        .collect();

    let mut families = Vec::new();
    let counters: Vec<(&MetricKey, u64)> = registry.counters().collect();
    let mut i = 0;
    while i < counters.len() {
        let name = counters[i].0.name;
        let mut samples = Vec::new();
        while i < counters.len() && counters[i].0.name == name {
            samples.push((label_ref(counters[i].0), counters[i].1));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Placement-service counter",
            data: PromData::Counter(samples),
        });
    }
    let gauges: Vec<(&MetricKey, f64)> = registry.gauges().collect();
    let mut i = 0;
    while i < gauges.len() {
        let name = gauges[i].0.name;
        let mut samples = Vec::new();
        while i < gauges.len() && gauges[i].0.name == name {
            samples.push((label_ref(gauges[i].0), gauges[i].1));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Placement-service gauge",
            data: PromData::Gauge(samples),
        });
    }
    let mut i = 0;
    while i < hists.len() {
        let name = hists[i].0.name;
        let mut samples = Vec::new();
        while i < hists.len() && hists[i].0.name == name {
            samples.push((
                label_ref(hists[i].0),
                PromHistogram {
                    cumulative: &cumulative[i],
                    sum: hists[i].1.sum() as f64,
                    count: hists[i].1.count(),
                },
            ));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Placement-service latency histogram",
            data: PromData::Histogram(samples),
        });
    }
    render_metrics(families)
}

fn label_ref(key: &MetricKey) -> Option<(&str, &str)> {
    key.label.as_ref().map(|(k, v)| (*k, v.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_page_renders_serve_families() {
        let mut registry = MetricsRegistry::new();
        registry.counter_with("serve_requests_total", "op", "place", 3);
        registry.counter_with("serve_requests_total", "op", "state", 1);
        registry.counter_with("serve_errors_total", "code", "conflict", 1);
        registry.gauge("serve_version", 4.0);
        registry.observe_with("serve_request_us", "op", "place", 120);
        registry.observe_with("serve_request_us", "op", "place", 450);
        let page = render_prom(&registry);
        assert!(page.contains("# TYPE sapsim_serve_requests_total counter"), "{page}");
        assert!(page.contains("sapsim_serve_requests_total{op=\"place\"} 3"), "{page}");
        assert!(page.contains("# TYPE sapsim_serve_version gauge"), "{page}");
        assert!(page.contains("# TYPE sapsim_serve_request_us histogram"), "{page}");
        assert!(page.contains("sapsim_serve_request_us_count{op=\"place\"} 2"), "{page}");
        assert!(page.contains("le=\"+Inf\""), "{page}");
    }

    #[test]
    fn jsonl_line_reader_enforces_cap_and_eof_rules() {
        let mut ok = std::io::Cursor::new(b"{\"a\":1}\n".to_vec());
        assert_eq!(
            read_jsonl_line(&mut ok, 64).unwrap(),
            Some("{\"a\":1}".to_string())
        );
        assert_eq!(read_jsonl_line(&mut ok, 64).unwrap(), None);

        let mut truncated = std::io::Cursor::new(b"{\"a\":1}".to_vec());
        let err = read_jsonl_line(&mut truncated, 64).unwrap_err();
        assert_eq!(err.code(), "bad-request");

        let mut oversized = std::io::Cursor::new(vec![b'x'; 100]);
        let err = read_jsonl_line(&mut oversized, 10).unwrap_err();
        assert_eq!(err.code(), "too-large");
        assert_eq!(err.http_status(), 413);
    }
}
