//! The scripted placement client (`sapsim serve --connect`).
//!
//! A script is a text file of `sapsim.api/v1` envelope lines (blank
//! lines and `#` comments skipped). The client sends each line to a
//! running server — one `POST /v1/request` per line over HTTP, or one
//! JSON line per request over the persistent TCP fast path — and
//! prints each response envelope on its own line. Error envelopes are
//! printed like any other response and do not fail the client: CI
//! compares the full printed transcript (and the final state hash)
//! against the offline applier's.

use crate::error::CliError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Load a script: every non-blank, non-comment line, in order.
pub fn read_script(path: &str) -> Result<Vec<String>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read script `{path}`: {e}")))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Drive a server over HTTP: one `POST /v1/request` per script line.
pub fn run_http(addr: &str, script: &str, out: &mut dyn Write) -> Result<(), CliError> {
    for line in read_script(script)? {
        let body = post_request(addr, &line)?;
        writeln!(out, "{body}").map_err(|e| CliError::Io(e.to_string()))?;
    }
    Ok(())
}

/// Drive a server over the TCP fast path: a single persistent
/// connection, one JSON line per request.
pub fn run_tcp(addr: &str, script: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let lines = read_script(script)?;
    let stream = TcpStream::connect(addr)
        .map_err(|e| CliError::Io(format!("cannot connect to `{addr}`: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::Io(format!("cannot clone connection: {e}")))?,
    );
    let mut writer = stream;
    for line in lines {
        writeln!(writer, "{line}")
            .map_err(|e| CliError::Io(format!("cannot send to `{addr}`: {e}")))?;
        writer
            .flush()
            .map_err(|e| CliError::Io(format!("cannot send to `{addr}`: {e}")))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| CliError::Io(format!("cannot read from `{addr}`: {e}")))?;
        if n == 0 {
            return Err(CliError::Io(format!(
                "server at `{addr}` closed the connection mid-script"
            )));
        }
        writeln!(out, "{}", response.trim_end()).map_err(|e| CliError::Io(e.to_string()))?;
    }
    Ok(())
}

/// POST one envelope line and return the response body.
pub fn post_request(addr: &str, line: &str) -> Result<String, CliError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CliError::Io(format!("cannot connect to `{addr}`: {e}")))?;
    write!(
        stream,
        "POST /v1/request HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{line}",
        line.len(),
    )
    .map_err(|e| CliError::Io(format!("cannot send to `{addr}`: {e}")))?;
    stream
        .flush()
        .map_err(|e| CliError::Io(format!("cannot send to `{addr}`: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| CliError::Io(format!("cannot read from `{addr}`: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or(&text);
    Ok(body.trim_end().to_string())
}

/// GET a path (used for `/healthz` readiness polling and `/metrics`).
pub fn get(addr: &str, path: &str) -> Result<String, CliError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CliError::Io(format!("cannot connect to `{addr}`: {e}")))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .map_err(|e| CliError::Io(format!("cannot send to `{addr}`: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| CliError::Io(format!("cannot read from `{addr}`: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    Ok(text
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or(&text)
        .to_string())
}
