//! A minimal, dependency-free HTTP/1.1 front end for the placement
//! service.
//!
//! One request per connection (`Connection: close`), JSON envelope
//! bodies, and a strict byte budget on both the head and the body.
//! Socket-level pathologies map onto the [`ProtocolError`] taxonomy —
//! a stalled sender is a [`Timeout`](ProtocolError::Timeout), an
//! oversized body is [`TooLarge`](ProtocolError::TooLarge) — so the
//! conformance suite can drive them end to end.

use sapsim_api::ProtocolError;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Byte budget for the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    /// The method verb (`GET`, `POST`, ...).
    pub method: String,
    /// The request path (`/v1/request`, `/metrics`, ...).
    pub path: String,
    /// The request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Read one HTTP request from the socket, enforcing `max_body` and the
/// already-armed read timeout.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, ProtocolError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(pos) = head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ProtocolError::TooLarge {
                limit: MAX_HEAD_BYTES,
                got: head.len(),
            });
        }
        let n = stream.read(&mut buf).map_err(io_to_protocol)?;
        if n == 0 {
            return Err(ProtocolError::Malformed(
                "connection closed before the request head completed".into(),
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };

    let head_text = std::str::from_utf8(&head[..split])
        .map_err(|_| ProtocolError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ProtocolError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ProtocolError::Malformed("request line has no path".into()))?
        .to_string();

    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| {
                    ProtocolError::Malformed("Content-Length is not an integer".into())
                })?);
            }
        }
    }

    let want = if method == "POST" {
        let len = content_length.ok_or_else(|| {
            ProtocolError::Malformed("POST requires a Content-Length header".into())
        })?;
        if len > max_body {
            return Err(ProtocolError::TooLarge {
                limit: max_body,
                got: len,
            });
        }
        len
    } else {
        0
    };

    let mut body = head[split + 4..].to_vec();
    while body.len() < want {
        let n = stream.read(&mut buf).map_err(io_to_protocol)?;
        if n == 0 {
            return Err(ProtocolError::Malformed(
                "connection closed before the body completed".into(),
            ));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(want);
    Ok(HttpRequest { method, path, body })
}

/// Write one response and close out the exchange.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Arm the per-connection read timeout; failures here are internal
/// (the socket is already broken).
pub fn arm_timeout(stream: &TcpStream, timeout: Duration) -> Result<(), ProtocolError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| ProtocolError::Internal(format!("cannot arm read timeout: {e}")))
}

/// Map socket read failures onto the protocol taxonomy: a timeout is
/// the slow-loris verdict, anything else is internal.
pub fn io_to_protocol(err: io::Error) -> ProtocolError {
    match err.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ProtocolError::Timeout("timed out waiting for request bytes".into())
        }
        _ => ProtocolError::Internal(format!("socket read failed: {err}")),
    }
}

/// The reason phrase for every status the error table can produce.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        _ => "Error",
    }
}

fn head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapsim_api::ProtocolError;

    #[test]
    fn every_mapped_status_has_a_reason_phrase() {
        for err in ProtocolError::samples() {
            assert_ne!(reason(err.http_status()), "Error", "{}", err.code());
        }
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(418), "Error");
    }

    #[test]
    fn timeout_kinds_map_to_protocol_timeout() {
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            let err = io_to_protocol(io::Error::new(kind, "slow"));
            assert_eq!(err.code(), "timeout");
            assert_eq!(err.http_status(), 408);
        }
        let err = io_to_protocol(io::Error::new(io::ErrorKind::ConnectionReset, "gone"));
        assert_eq!(err.code(), "internal");
    }

    #[test]
    fn head_end_finds_the_blank_line() {
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(16));
        assert_eq!(head_end(b"partial\r\n"), None);
    }
}
