//! The CLI's typed error and its stable exit-code mapping.

use sapsim_core::SimError;
use sapsim_sweep::SweepError;
use std::fmt;

use crate::args::ArgError;

/// What went wrong while running a `sapsim` command.
///
/// Every variant maps to a stable process exit code (see
/// [`CliError::exit_code`]), so scripts can branch on *why* an
/// invocation failed:
///
/// | code | variant    | meaning                                       |
/// |------|------------|-----------------------------------------------|
/// | 2    | [`Usage`]  | bad arguments (unknown option, bad value, ...) |
/// | 3    | [`Config`] | arguments parsed but describe an invalid run  |
/// | 4    | [`Io`]     | a file could not be read or written           |
/// | 5    | [`Data`]   | an input file parsed but its content is bad   |
///
/// Marked `#[non_exhaustive]`; keep a wildcard arm.
///
/// [`Usage`]: CliError::Usage
/// [`Config`]: CliError::Config
/// [`Io`]: CliError::Io
/// [`Data`]: CliError::Data
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CliError {
    /// The command line itself was malformed. The payload is the full
    /// human-readable message.
    Usage(String),
    /// The arguments parsed, but the configuration they describe was
    /// rejected by the simulator (wraps the core error).
    Config(SimError),
    /// Reading or writing a file (or stdout) failed.
    Io(String),
    /// An input file was readable but its contents are malformed — a bad
    /// JSONL log line, an unparseable sweep manifest, a corrupt report.
    Data(String),
}

impl CliError {
    /// The stable process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Config(_) => 3,
            CliError::Io(_) => 4,
            CliError::Data(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Config(err) => write!(f, "{err}"),
            CliError::Io(msg) => f.write_str(msg),
            CliError::Data(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Config(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArgError> for CliError {
    fn from(err: ArgError) -> Self {
        CliError::Usage(err.to_string())
    }
}

impl From<SimError> for CliError {
    fn from(err: SimError) -> Self {
        CliError::Config(err)
    }
}

impl From<SweepError> for CliError {
    fn from(err: SweepError) -> Self {
        match err {
            SweepError::Sim(err) => CliError::Config(err),
            SweepError::Io(msg) => CliError::Io(msg),
            // Manifest syntax, schema mismatches, empty grids: the file
            // was readable but its content is unusable.
            other => CliError::Data(other.to_string()),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(err: std::io::Error) -> Self {
        CliError::Io(err.to_string())
    }
}

impl From<sapsim_api::ProtocolError> for CliError {
    /// Protocol failures on the serve *setup* path (per-request failures
    /// are answered as error envelopes, not process exits). The variant
    /// is chosen so [`CliError::exit_code`] equals
    /// [`ProtocolError::exit_code`](sapsim_api::ProtocolError::exit_code)
    /// — both tables project the same taxonomy.
    fn from(err: sapsim_api::ProtocolError) -> Self {
        match err.exit_code() {
            2 => CliError::Usage(err.to_string()),
            3 => CliError::Config(SimError::InvalidConfig(err.to_string())),
            4 => CliError::Io(err.to_string()),
            _ => CliError::Data(err.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_per_class() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            CliError::Config(SimError::InvalidConfig("x".into())).exit_code(),
            3
        );
        assert_eq!(CliError::Io("x".into()).exit_code(), 4);
        assert_eq!(CliError::Data("x".into()).exit_code(), 5);
    }

    #[test]
    fn conversions_pick_the_right_class() {
        let usage: CliError = ArgError("unknown option `--x`".into()).into();
        assert_eq!(usage.exit_code(), 2);

        let config: CliError = SimError::InvalidConfig("days must be at least 1".into()).into();
        assert_eq!(config.exit_code(), 3);
        assert_eq!(
            config.to_string(),
            "invalid config: days must be at least 1"
        );

        let from_sweep: CliError = SweepError::Sim(SimError::InvalidConfig("x".into())).into();
        assert_eq!(from_sweep.exit_code(), 3);
        let manifest: CliError = SweepError::Manifest("bad sweep manifest: oops".into()).into();
        assert_eq!(manifest.exit_code(), 5);
        let io: CliError = SweepError::Io("cannot read x".into()).into();
        assert_eq!(io.exit_code(), 4);
        assert_eq!(CliError::from(SweepError::NoScenarios).exit_code(), 5);
    }

    #[test]
    fn protocol_errors_keep_their_exit_code_through_the_conversion() {
        for err in sapsim_api::ProtocolError::samples() {
            let expected = err.exit_code();
            let cli: CliError = err.into();
            assert_eq!(cli.exit_code(), expected, "{cli}");
        }
    }

    #[test]
    fn config_errors_expose_a_source() {
        use std::error::Error as _;
        let err = CliError::Config(SimError::InvalidConfig("x".into()));
        assert!(err.source().is_some());
        assert!(CliError::Usage("x".into()).source().is_none());
    }
}
