//! Minimal argument parsing: `--flag`, `--key value`, and positionals.

use std::collections::HashMap;
use std::fmt;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Parsed arguments: options, boolean flags, and positionals.
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Parsed {
    /// Parse `argv` given the sets of known value-taking options and known
    /// boolean flags (both spelled without the leading `--`).
    pub fn parse(
        argv: &[String],
        value_options: &[&str],
        bool_flags: &[&str],
    ) -> Result<Parsed, ArgError> {
        let mut parsed = Parsed::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // `--key=value` form.
                if let Some((k, v)) = name.split_once('=') {
                    if !value_options.contains(&k) {
                        return Err(ArgError(format!("unknown option `--{k}`")));
                    }
                    parsed.options.insert(k.to_string(), v.to_string());
                } else if value_options.contains(&name) {
                    let Some(value) = it.next() else {
                        return Err(ArgError(format!("`--{name}` requires a value")));
                    };
                    parsed.options.insert(name.to_string(), value.clone());
                } else if bool_flags.contains(&name) {
                    parsed.flags.push(name.to_string());
                } else {
                    return Err(ArgError(format!("unknown option `--{name}`")));
                }
            } else {
                parsed.positionals.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    /// Raw string value of an option, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value `{raw}` for `--{key}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let p = Parsed::parse(
            &argv(&["--scale", "0.1", "file.csv", "--no-drs", "--days=3"]),
            &["scale", "days"],
            &["no-drs"],
        )
        .unwrap();
        assert_eq!(p.get("scale"), Some("0.1"));
        assert_eq!(p.get("days"), Some("3"));
        assert!(p.flag("no-drs"));
        assert!(!p.flag("cross-bb"));
        assert_eq!(p.positionals(), &["file.csv".to_string()]);
    }

    #[test]
    fn typed_access_with_defaults() {
        let p = Parsed::parse(&argv(&["--scale", "0.25"]), &["scale"], &[]).unwrap();
        assert_eq!(p.get_parsed("scale", 1.0f64).unwrap(), 0.25);
        assert_eq!(p.get_parsed("days", 30u64).unwrap(), 30);
        let bad = Parsed::parse(&argv(&["--scale", "abc"]), &["scale"], &[]).unwrap();
        assert!(bad.get_parsed("scale", 1.0f64).is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        let err = Parsed::parse(&argv(&["--bogus"]), &["scale"], &["no-drs"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = Parsed::parse(&argv(&["--scale"]), &["scale"], &[]).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }
}
