//! The `sapsim` binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sapsim_cli::run(&argv));
}
