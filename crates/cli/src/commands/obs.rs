//! `sapsim obs` — inspect an observability JSONL log offline.
//!
//! `sapsim obs summary run.jsonl` re-aggregates a decision/span log written
//! by `simulate --obs-out` into the run's diagnostic headline: span timing
//! per event-loop phase, placement outcomes, filter rejection totals, and
//! the event counters. With `--prom` the counters are re-rendered in
//! Prometheus text format instead, so a log can be pushed through the same
//! tooling as the telemetry exposition.

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_telemetry::exposition::render_counters;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::Write;

/// Per-span-kind aggregate rebuilt from the log.
#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Everything `summary` extracts from one pass over the log.
#[derive(Default)]
struct Summary {
    meta: Option<(f64, u64, u64, u64)>, // (sample rate, ring capacity, events, dropped)
    spans: BTreeMap<String, SpanAgg>,
    outcomes: BTreeMap<String, u64>,
    rejections: BTreeMap<String, u64>,
    decisions: u64,
    retries_total: u64,
    retries_max: u64,
    candidates_total: u64,
    faults: BTreeMap<String, u64>,
    counters: Vec<(String, u64)>,
}

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[], &["prom"])?;
    let [action, path] = parsed.positionals() else {
        return Err(CliError::Usage(
            "usage: sapsim obs summary <FILE.jsonl> [--prom]".into(),
        ));
    };
    if action != "summary" {
        return Err(CliError::Usage(format!(
            "unknown obs action `{action}` (expected `summary`)"
        )));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let summary = summarize(&text)?;
    if parsed.flag("prom") {
        let page = render_counters(summary.counters.iter().map(|(name, v)| (name.as_str(), *v)));
        write!(out, "{page}")?;
        return Ok(());
    }
    render(&summary, out)?;
    Ok(())
}

/// One pass over the JSONL text, dispatching on each line's `type`.
/// Malformed lines are data errors: the file was readable, its content
/// was not.
fn summarize(text: &str) -> Result<Summary, CliError> {
    let mut s = Summary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| CliError::Data(format!("line {}: invalid JSON: {e}", lineno + 1)))?;
        match v["type"].as_str() {
            Some("meta") => {
                s.meta = Some((
                    v["decision_sample_rate"].as_f64().unwrap_or(f64::NAN),
                    v["ring_capacity"].as_u64().unwrap_or(0),
                    v["events"].as_u64().unwrap_or(0),
                    v["dropped"].as_u64().unwrap_or(0),
                ));
            }
            Some("span") => {
                let kind = v["kind"].as_str().unwrap_or("?").to_string();
                let dur = v["dur_us"].as_u64().unwrap_or(0);
                let agg = s.spans.entry(kind).or_default();
                agg.count += 1;
                agg.total_us += dur;
                agg.max_us = agg.max_us.max(dur);
            }
            Some("decision") => {
                s.decisions += 1;
                let outcome = v["outcome"].as_str().unwrap_or("?").to_string();
                *s.outcomes.entry(outcome).or_insert(0) += 1;
                let retries = v["retries"].as_u64().unwrap_or(0);
                s.retries_total += retries;
                s.retries_max = s.retries_max.max(retries);
                s.candidates_total += v["candidates"].as_u64().unwrap_or(0);
                if let Some(rej) = v["rejections"].as_object() {
                    for (reason, count) in rej {
                        *s.rejections.entry(reason.clone()).or_insert(0) +=
                            count.as_u64().unwrap_or(0);
                    }
                }
            }
            Some("fault") => {
                let kind = v["kind"].as_str().unwrap_or("?").to_string();
                *s.faults.entry(kind).or_insert(0) += 1;
            }
            Some("counter") => {
                if let (Some(name), Some(value)) = (v["name"].as_str(), v["value"].as_u64()) {
                    s.counters.push((name.to_string(), value));
                }
            }
            other => {
                return Err(CliError::Data(format!(
                    "line {}: unknown record type {:?}",
                    lineno + 1,
                    other.unwrap_or("<missing>")
                )));
            }
        }
    }
    Ok(s)
}

/// Human-readable rendering of a [`Summary`].
fn render(s: &Summary, out: &mut dyn Write) -> std::io::Result<()> {
    if let Some((rate, capacity, events, dropped)) = s.meta {
        writeln!(
            out,
            "log: {events} events buffered, {dropped} dropped (ring {capacity}, decision sample rate {rate})"
        )?;
    }

    if !s.spans.is_empty() {
        writeln!(out, "\nspans:")?;
        writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "mean us", "max us"
        )?;
        for (kind, agg) in &s.spans {
            writeln!(
                out,
                "  {:<16} {:>10} {:>12.1} {:>10} {:>10}",
                kind,
                agg.count,
                agg.total_us as f64 / 1000.0,
                agg.total_us / agg.count.max(1),
                agg.max_us
            )?;
        }
    }

    if s.decisions > 0 {
        writeln!(out, "\ndecisions: {} sampled", s.decisions)?;
        for (outcome, count) in &s.outcomes {
            writeln!(out, "  {outcome}: {count}")?;
        }
        writeln!(
            out,
            "  retries: {} total, max {} | mean candidate set: {:.1}",
            s.retries_total,
            s.retries_max,
            s.candidates_total as f64 / s.decisions as f64
        )?;
    }

    if !s.rejections.is_empty() {
        writeln!(out, "\nfilter rejections (across sampled decisions):")?;
        let mut by_count: Vec<_> = s.rejections.iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (reason, count) in by_count {
            writeln!(out, "  {reason}: {count}")?;
        }
    }

    if !s.faults.is_empty() {
        writeln!(out, "\nfault events:")?;
        for (kind, count) in &s.faults {
            writeln!(out, "  {kind}: {count}")?;
        }
    }

    if !s.counters.is_empty() {
        writeln!(out, "\ncounters:")?;
        for (name, value) in &s.counters {
            writeln!(out, "  {name}: {value}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = concat!(
        "{\"type\":\"meta\",\"version\":1,\"decision_sample_rate\":1,",
        "\"ring_capacity\":65536,\"events\":4,\"dropped\":0}\n",
        "{\"type\":\"span\",\"kind\":\"scrape\",\"ts_us\":10,\"dur_us\":200}\n",
        "{\"type\":\"span\",\"kind\":\"scrape\",\"ts_us\":500,\"dur_us\":100}\n",
        "{\"type\":\"decision\",\"sim_time_ms\":1000,\"vm_uid\":7,\"candidates\":12,",
        "\"retries\":1,\"outcome\":\"placed\",\"chosen_host\":3,",
        "\"rejections\":{\"insufficient_cpu\":2,\"wrong_az\":8},\"top_k\":[]}\n",
        "{\"type\":\"counter\",\"name\":\"placements\",\"value\":812}\n",
        "{\"type\":\"fault\",\"kind\":\"host_fail\",\"sim_time_ms\":500,",
        "\"node\":3,\"vm_uid\":null}\n",
        "{\"type\":\"fault\",\"kind\":\"evac_replaced\",\"sim_time_ms\":500,",
        "\"node\":5,\"vm_uid\":42}\n",
        "{\"type\":\"fault\",\"kind\":\"host_fail\",\"sim_time_ms\":900,",
        "\"node\":7,\"vm_uid\":null}\n",
    );

    #[test]
    fn summarize_aggregates_all_record_types() {
        let s = summarize(LOG).unwrap();
        assert_eq!(s.meta, Some((1.0, 65536, 4, 0)));
        let scrape = &s.spans["scrape"];
        assert_eq!(
            (scrape.count, scrape.total_us, scrape.max_us),
            (2, 300, 200)
        );
        assert_eq!(s.decisions, 1);
        assert_eq!(s.outcomes["placed"], 1);
        assert_eq!(s.rejections["wrong_az"], 8);
        assert_eq!(s.retries_total, 1);
        assert_eq!(s.counters, vec![("placements".to_string(), 812)]);
        assert_eq!(s.faults["host_fail"], 2);
        assert_eq!(s.faults["evac_replaced"], 1);
    }

    #[test]
    fn summarize_rejects_malformed_lines() {
        assert!(summarize("not json\n").is_err());
        assert!(summarize("{\"type\":\"mystery\"}\n").is_err());
    }

    #[test]
    fn run_requires_the_summary_action() {
        let argv: Vec<String> = vec!["frobnicate".into(), "x.jsonl".into()];
        let err = run(&argv, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("unknown obs action"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn render_mentions_each_section() {
        let s = summarize(LOG).unwrap();
        let mut buf = Vec::new();
        render(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("4 events buffered"));
        assert!(text.contains("scrape"));
        assert!(text.contains("placed: 1"));
        assert!(text.contains("wrong_az: 8"));
        assert!(text.contains("placements: 812"));
        assert!(text.contains("fault events:"));
        assert!(text.contains("host_fail: 2"));
    }

    #[test]
    fn prom_mode_renders_counter_families() {
        let dir = std::env::temp_dir().join("sapsim-obs-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        std::fs::write(&path, LOG).unwrap();
        let argv: Vec<String> = vec![
            "summary".into(),
            path.to_str().unwrap().into(),
            "--prom".into(),
        ];
        let mut buf = Vec::new();
        run(&argv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE sapsim_placements counter"));
        assert!(text.contains("sapsim_placements 812"));
    }
}
