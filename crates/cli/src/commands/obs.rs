//! `sapsim obs` — inspect observability artifacts offline.
//!
//! `sapsim obs summary run.jsonl` re-aggregates a decision/span log written
//! by `simulate --obs-out` into the run's diagnostic headline: span timing
//! per event-loop phase, placement outcomes, filter rejection totals, and
//! the event counters. With `--prom` the counters are re-rendered in
//! Prometheus text format instead, so a log can be pushed through the same
//! tooling as the telemetry exposition.
//!
//! `sapsim obs metrics FILE...` merges one or more `sapsim.metrics/v1`
//! snapshots (from `simulate --metrics-out` or `sweep --metrics-dir`) into
//! a single view: counters add, gauges take the last file's value, and the
//! fixed-boundary histograms merge bucket-wise without loss. With `--prom`
//! the merged registry renders as a full Prometheus page (counter, gauge,
//! and histogram families).

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_core::obs::{bucket_index, bucket_upper_bound, Histogram};
use sapsim_telemetry::exposition::{
    render_counters, render_metrics, PromData, PromFamily, PromHistogram,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::Write;

/// Per-span-kind aggregate rebuilt from the log.
#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Everything `summary` extracts from one pass over the log.
#[derive(Default)]
struct Summary {
    meta: Option<(f64, u64, u64, u64)>, // (sample rate, ring capacity, events, dropped)
    spans: BTreeMap<String, SpanAgg>,
    outcomes: BTreeMap<String, u64>,
    rejections: BTreeMap<String, u64>,
    decisions: u64,
    retries_total: u64,
    retries_max: u64,
    candidates_total: u64,
    faults: BTreeMap<String, u64>,
    counters: Vec<(String, u64)>,
}

const USAGE: &str = "usage: sapsim obs summary <FILE.jsonl> [--prom]\n       sapsim obs metrics <FILE.json>... [--prom]";

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[], &["prom"])?;
    let Some((action, paths)) = parsed.positionals().split_first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    match action.as_str() {
        "summary" => {
            let [path] = paths else {
                return Err(CliError::Usage(USAGE.into()));
            };
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            let summary = summarize(&text)?;
            if parsed.flag("prom") {
                let page =
                    render_counters(summary.counters.iter().map(|(name, v)| (name.as_str(), *v)));
                write!(out, "{page}")?;
                return Ok(());
            }
            render(&summary, out)?;
            Ok(())
        }
        "metrics" => {
            if paths.is_empty() {
                return Err(CliError::Usage(USAGE.into()));
            }
            let mut agg = MetricsAgg::default();
            for path in paths {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
                merge_snapshot(&text, path, &mut agg)?;
            }
            if parsed.flag("prom") {
                write!(out, "{}", render_metrics_prom(&agg))?;
            } else {
                render_metrics_table(&agg, out)?;
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown obs action `{other}` (expected `summary` or `metrics`)"
        ))),
    }
}

/// One pass over the JSONL text, dispatching on each line's `type`.
/// Malformed lines are data errors: the file was readable, its content
/// was not.
fn summarize(text: &str) -> Result<Summary, CliError> {
    let mut s = Summary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| CliError::Data(format!("line {}: invalid JSON: {e}", lineno + 1)))?;
        match v["type"].as_str() {
            Some("meta") => {
                s.meta = Some((
                    v["decision_sample_rate"].as_f64().unwrap_or(f64::NAN),
                    v["ring_capacity"].as_u64().unwrap_or(0),
                    v["events"].as_u64().unwrap_or(0),
                    v["dropped"].as_u64().unwrap_or(0),
                ));
            }
            Some("span") => {
                let kind = v["kind"].as_str().unwrap_or("?").to_string();
                let dur = v["dur_us"].as_u64().unwrap_or(0);
                let agg = s.spans.entry(kind).or_default();
                agg.count += 1;
                agg.total_us += dur;
                agg.max_us = agg.max_us.max(dur);
            }
            Some("decision") => {
                s.decisions += 1;
                let outcome = v["outcome"].as_str().unwrap_or("?").to_string();
                *s.outcomes.entry(outcome).or_insert(0) += 1;
                let retries = v["retries"].as_u64().unwrap_or(0);
                s.retries_total += retries;
                s.retries_max = s.retries_max.max(retries);
                s.candidates_total += v["candidates"].as_u64().unwrap_or(0);
                if let Some(rej) = v["rejections"].as_object() {
                    for (reason, count) in rej {
                        *s.rejections.entry(reason.clone()).or_insert(0) +=
                            count.as_u64().unwrap_or(0);
                    }
                }
            }
            Some("fault") => {
                let kind = v["kind"].as_str().unwrap_or("?").to_string();
                *s.faults.entry(kind).or_insert(0) += 1;
            }
            Some("counter") => {
                if let (Some(name), Some(value)) = (v["name"].as_str(), v["value"].as_u64()) {
                    s.counters.push((name.to_string(), value));
                }
            }
            other => {
                return Err(CliError::Data(format!(
                    "line {}: unknown record type {:?}",
                    lineno + 1,
                    other.unwrap_or("<missing>")
                )));
            }
        }
    }
    Ok(s)
}

/// A series identity parsed from a snapshot: name plus optional label
/// pair. Owned strings (unlike [`sapsim_core::obs::MetricKey`], whose
/// names are `&'static str`), because these come from files.
type SeriesKey = (String, Option<(String, String)>);

/// The merged view of one or more `sapsim.metrics/v1` snapshots.
/// Counters add, gauges take the last file's value (matching registry
/// merge semantics), histograms merge bucket-wise.
#[derive(Default)]
struct MetricsAgg {
    files: usize,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// Parse one snapshot file's text and fold it into `agg`. Malformed
/// content is a data error tagged with the file path.
fn merge_snapshot(text: &str, path: &str, agg: &mut MetricsAgg) -> Result<(), CliError> {
    let bad = |what: &str| CliError::Data(format!("{path}: {what}"));
    let v: Value = serde_json::from_str(text.trim())
        .map_err(|e| CliError::Data(format!("{path}: invalid JSON: {e}")))?;
    if v["schema"].as_str() != Some("sapsim.metrics/v1") {
        return Err(bad("not a sapsim.metrics/v1 snapshot"));
    }
    for entry in v["counters"].as_array().into_iter().flatten() {
        let key = series_key(entry, path)?;
        let value = entry["value"]
            .as_u64()
            .ok_or_else(|| bad("counter value must be a u64"))?;
        // Saturating: file-supplied values near u64::MAX must degrade
        // deterministically, not overflow.
        let slot = agg.counters.entry(key).or_insert(0);
        *slot = slot.saturating_add(value);
    }
    for entry in v["gauges"].as_array().into_iter().flatten() {
        let key = series_key(entry, path)?;
        let value = entry["value"]
            .as_f64()
            .ok_or_else(|| bad("gauge value must be a number"))?;
        agg.gauges.insert(key, value);
    }
    for entry in v["histograms"].as_array().into_iter().flatten() {
        let key = series_key(entry, path)?;
        let field = |name: &str| {
            entry[name]
                .as_u64()
                .ok_or_else(|| bad(&format!("histogram {name} must be a u64")))
        };
        let (count, sum, min, max) = (field("count")?, field("sum")?, field("min")?, field("max")?);
        let mut buckets = Vec::new();
        for pair in entry["buckets"]
            .as_array()
            .ok_or_else(|| bad("histogram buckets must be an array"))?
        {
            let (Some(ub), Some(n)) = (pair[0].as_u64(), pair[1].as_u64()) else {
                return Err(bad("histogram bucket must be [upper_bound, count]"));
            };
            // Only canonical log-linear bounds are valid: anything else
            // came from a corrupt or foreign snapshot and would silently
            // land in the wrong bucket.
            if ub != bucket_upper_bound(bucket_index(ub)) {
                return Err(bad(&format!(
                    "histogram bucket bound {ub} is not a canonical bucket boundary"
                )));
            }
            buckets.push((ub, n));
        }
        let parsed = Histogram::from_parts(buckets, sum, min, max);
        if parsed.count() != count {
            return Err(bad("histogram bucket counts do not add up to count"));
        }
        agg.histograms.entry(key).or_default().merge(&parsed);
    }
    agg.files += 1;
    Ok(())
}

/// The `name`/`label` identity of one snapshot entry.
fn series_key(entry: &Value, path: &str) -> Result<SeriesKey, CliError> {
    let name = entry["name"]
        .as_str()
        .ok_or_else(|| CliError::Data(format!("{path}: metric entry without a name")))?;
    let label = match entry.get("label") {
        None => None,
        Some(obj) => {
            let map = obj
                .as_object()
                .filter(|m| m.len() == 1)
                .ok_or_else(|| {
                    CliError::Data(format!(
                        "{path}: metric label must be a single-pair object"
                    ))
                })?;
            let (k, v) = map.iter().next().expect("len checked above");
            let v = v.as_str().ok_or_else(|| {
                CliError::Data(format!("{path}: metric label value must be a string"))
            })?;
            Some((k.clone(), v.to_string()))
        }
    };
    Ok((name.to_string(), label))
}

/// `name` or `name{key="value"}` for the table rendering.
fn series_display((name, label): &SeriesKey) -> String {
    match label {
        None => name.clone(),
        Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
    }
}

/// Human-readable rendering of a [`MetricsAgg`].
fn render_metrics_table(agg: &MetricsAgg, out: &mut dyn Write) -> std::io::Result<()> {
    let series = agg.counters.len() + agg.gauges.len() + agg.histograms.len();
    writeln!(
        out,
        "metrics: {series} series merged from {} snapshot{}",
        agg.files,
        if agg.files == 1 { "" } else { "s" }
    )?;
    if !agg.counters.is_empty() {
        writeln!(out, "\ncounters:")?;
        for (key, value) in &agg.counters {
            writeln!(out, "  {}: {value}", series_display(key))?;
        }
    }
    if !agg.gauges.is_empty() {
        writeln!(out, "\ngauges:")?;
        for (key, value) in &agg.gauges {
            writeln!(out, "  {}: {value}", series_display(key))?;
        }
    }
    if !agg.histograms.is_empty() {
        writeln!(out, "\nhistograms:")?;
        for (key, h) in &agg.histograms {
            writeln!(
                out,
                "  {}: count={} sum={} min={} max={} mean={:.1}",
                series_display(key),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean().unwrap_or(0.0)
            )?;
        }
    }
    Ok(())
}

/// The merged registry as a full Prometheus page: one family per metric
/// name, one sample per label value. `BTreeMap` order means consecutive
/// entries with the same name form one family.
fn render_metrics_prom(agg: &MetricsAgg) -> String {
    let hists: Vec<_> = agg.histograms.iter().collect();
    // Cumulative bucket counts, precomputed so the families can borrow
    // slices. The top bucket (upper bound u64::MAX) is dropped: the
    // renderer's mandatory `le="+Inf"` sample already carries the total.
    let cumulative: Vec<Vec<(f64, u64)>> = hists
        .iter()
        .map(|(_, h)| {
            let mut cum = 0u64;
            h.buckets()
                .filter_map(|(ub, n)| {
                    cum += n;
                    (ub != u64::MAX).then_some((ub as f64, cum))
                })
                .collect()
        })
        .collect();

    let mut families = Vec::new();
    let counters: Vec<_> = agg.counters.iter().collect();
    let mut i = 0;
    while i < counters.len() {
        let name = counters[i].0 .0.as_str();
        let mut samples = Vec::new();
        while i < counters.len() && counters[i].0 .0 == name {
            samples.push((label_ref(counters[i].0), *counters[i].1));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Merged engine counter",
            data: PromData::Counter(samples),
        });
    }
    let gauges: Vec<_> = agg.gauges.iter().collect();
    let mut i = 0;
    while i < gauges.len() {
        let name = gauges[i].0 .0.as_str();
        let mut samples = Vec::new();
        while i < gauges.len() && gauges[i].0 .0 == name {
            samples.push((label_ref(gauges[i].0), *gauges[i].1));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Merged engine gauge",
            data: PromData::Gauge(samples),
        });
    }
    let mut i = 0;
    while i < hists.len() {
        let name = hists[i].0 .0.as_str();
        let mut samples = Vec::new();
        while i < hists.len() && hists[i].0 .0 == name {
            samples.push((
                label_ref(hists[i].0),
                PromHistogram {
                    cumulative: &cumulative[i],
                    sum: hists[i].1.sum() as f64,
                    count: hists[i].1.count(),
                },
            ));
            i += 1;
        }
        families.push(PromFamily {
            name,
            help: "Merged engine histogram",
            data: PromData::Histogram(samples),
        });
    }
    render_metrics(families)
}

/// Borrowed label pair of a [`SeriesKey`], in the renderer's shape.
fn label_ref((_, label): &SeriesKey) -> Option<(&str, &str)> {
    label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()))
}

/// Human-readable rendering of a [`Summary`].
fn render(s: &Summary, out: &mut dyn Write) -> std::io::Result<()> {
    if let Some((rate, capacity, events, dropped)) = s.meta {
        writeln!(
            out,
            "log: {events} events buffered, {dropped} dropped (ring {capacity}, decision sample rate {rate})"
        )?;
    }

    if !s.spans.is_empty() {
        writeln!(out, "\nspans:")?;
        writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "mean us", "max us"
        )?;
        for (kind, agg) in &s.spans {
            writeln!(
                out,
                "  {:<16} {:>10} {:>12.1} {:>10} {:>10}",
                kind,
                agg.count,
                agg.total_us as f64 / 1000.0,
                agg.total_us / agg.count.max(1),
                agg.max_us
            )?;
        }
    }

    if s.decisions > 0 {
        writeln!(out, "\ndecisions: {} sampled", s.decisions)?;
        for (outcome, count) in &s.outcomes {
            writeln!(out, "  {outcome}: {count}")?;
        }
        writeln!(
            out,
            "  retries: {} total, max {} | mean candidate set: {:.1}",
            s.retries_total,
            s.retries_max,
            s.candidates_total as f64 / s.decisions as f64
        )?;
    }

    if !s.rejections.is_empty() {
        writeln!(out, "\nfilter rejections (across sampled decisions):")?;
        let mut by_count: Vec<_> = s.rejections.iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (reason, count) in by_count {
            writeln!(out, "  {reason}: {count}")?;
        }
    }

    if !s.faults.is_empty() {
        writeln!(out, "\nfault events:")?;
        for (kind, count) in &s.faults {
            writeln!(out, "  {kind}: {count}")?;
        }
    }

    if !s.counters.is_empty() {
        writeln!(out, "\ncounters:")?;
        for (name, value) in &s.counters {
            writeln!(out, "  {name}: {value}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = concat!(
        "{\"type\":\"meta\",\"version\":1,\"decision_sample_rate\":1,",
        "\"ring_capacity\":65536,\"events\":4,\"dropped\":0}\n",
        "{\"type\":\"span\",\"kind\":\"scrape\",\"ts_us\":10,\"dur_us\":200}\n",
        "{\"type\":\"span\",\"kind\":\"scrape\",\"ts_us\":500,\"dur_us\":100}\n",
        "{\"type\":\"decision\",\"sim_time_ms\":1000,\"vm_uid\":7,\"candidates\":12,",
        "\"retries\":1,\"outcome\":\"placed\",\"chosen_host\":3,",
        "\"rejections\":{\"insufficient_cpu\":2,\"wrong_az\":8},\"top_k\":[]}\n",
        "{\"type\":\"counter\",\"name\":\"placements\",\"value\":812}\n",
        "{\"type\":\"fault\",\"kind\":\"host_fail\",\"sim_time_ms\":500,",
        "\"node\":3,\"vm_uid\":null}\n",
        "{\"type\":\"fault\",\"kind\":\"evac_replaced\",\"sim_time_ms\":500,",
        "\"node\":5,\"vm_uid\":42}\n",
        "{\"type\":\"fault\",\"kind\":\"host_fail\",\"sim_time_ms\":900,",
        "\"node\":7,\"vm_uid\":null}\n",
    );

    #[test]
    fn summarize_aggregates_all_record_types() {
        let s = summarize(LOG).unwrap();
        assert_eq!(s.meta, Some((1.0, 65536, 4, 0)));
        let scrape = &s.spans["scrape"];
        assert_eq!(
            (scrape.count, scrape.total_us, scrape.max_us),
            (2, 300, 200)
        );
        assert_eq!(s.decisions, 1);
        assert_eq!(s.outcomes["placed"], 1);
        assert_eq!(s.rejections["wrong_az"], 8);
        assert_eq!(s.retries_total, 1);
        assert_eq!(s.counters, vec![("placements".to_string(), 812)]);
        assert_eq!(s.faults["host_fail"], 2);
        assert_eq!(s.faults["evac_replaced"], 1);
    }

    #[test]
    fn summarize_rejects_malformed_lines() {
        assert!(summarize("not json\n").is_err());
        assert!(summarize("{\"type\":\"mystery\"}\n").is_err());
    }

    #[test]
    fn run_requires_the_summary_action() {
        let argv: Vec<String> = vec!["frobnicate".into(), "x.jsonl".into()];
        let err = run(&argv, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("unknown obs action"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn render_mentions_each_section() {
        let s = summarize(LOG).unwrap();
        let mut buf = Vec::new();
        render(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("4 events buffered"));
        assert!(text.contains("scrape"));
        assert!(text.contains("placed: 1"));
        assert!(text.contains("wrong_az: 8"));
        assert!(text.contains("placements: 812"));
        assert!(text.contains("fault events:"));
        assert!(text.contains("host_fail: 2"));
    }

    fn snapshot_files(dir_name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        use sapsim_core::obs::MetricsRegistry;
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = MetricsRegistry::new();
        a.counter("placements", 5);
        a.counter_with("region_placements", "region", "0", 3);
        a.gauge("vm_final_live", 10.0);
        a.observe("scrape_us", 3);
        a.observe("scrape_us", 200);
        let mut b = MetricsRegistry::new();
        b.counter("placements", 7);
        b.gauge("vm_final_live", 12.0);
        b.observe("scrape_us", 3);
        let fa = dir.join("a.metrics.json");
        let fb = dir.join("b.metrics.json");
        std::fs::write(&fa, a.to_json()).unwrap();
        std::fs::write(&fb, b.to_json()).unwrap();
        (fa, fb)
    }

    #[test]
    fn metrics_action_merges_snapshots() {
        let (fa, fb) = snapshot_files("sapsim-obs-metrics-merge");
        let argv: Vec<String> = vec![
            "metrics".into(),
            fa.to_str().unwrap().into(),
            fb.to_str().unwrap().into(),
        ];
        let mut buf = Vec::new();
        run(&argv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("merged from 2 snapshots"));
        assert!(text.contains("placements: 12"), "counters add: {text}");
        assert!(text.contains("region_placements{region=\"0\"}: 3"));
        assert!(
            text.contains("vm_final_live: 12"),
            "gauges take the last file's value: {text}"
        );
        assert!(text.contains("scrape_us: count=3 sum=206 min=3 max=200 mean=68.7"));
    }

    #[test]
    fn metrics_action_prom_mode_renders_all_families() {
        let (fa, _) = snapshot_files("sapsim-obs-metrics-prom");
        let argv: Vec<String> =
            vec!["metrics".into(), fa.to_str().unwrap().into(), "--prom".into()];
        let mut buf = Vec::new();
        run(&argv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE sapsim_placements counter\n"));
        assert!(text.contains("sapsim_placements 5\n"));
        assert!(text.contains("sapsim_region_placements{region=\"0\"} 3\n"));
        assert!(text.contains("# TYPE sapsim_vm_final_live gauge\n"));
        assert!(text.contains("sapsim_vm_final_live 10\n"));
        assert!(text.contains("# TYPE sapsim_scrape_us histogram\n"));
        // Observations 3 and 200 land in buckets with inclusive upper
        // bounds 3 and 223; +Inf carries the total.
        assert!(text.contains("sapsim_scrape_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("sapsim_scrape_us_bucket{le=\"223\"} 2\n"));
        assert!(text.contains("sapsim_scrape_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("sapsim_scrape_us_sum 203\n"));
        assert!(text.contains("sapsim_scrape_us_count 2\n"));
    }

    #[test]
    fn metrics_action_rejects_bad_input() {
        // No files at all is a usage error.
        let err = run(&["metrics".to_string()], &mut Vec::new()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        // A JSONL event log is not a metrics snapshot.
        let dir = std::env::temp_dir().join("sapsim-obs-metrics-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        std::fs::write(&path, "{\"type\":\"meta\"}\n").unwrap();
        let argv: Vec<String> = vec!["metrics".into(), path.to_str().unwrap().into()];
        let err = run(&argv, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("sapsim.metrics/v1"));
    }

    #[test]
    fn metrics_action_rejects_non_canonical_bucket_bounds() {
        let dir = std::env::temp_dir().join("sapsim-obs-metrics-badbound");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.metrics.json");
        // 8 is inside the (7, 9] bucket, not a boundary — a corrupt or
        // foreign snapshot, rejected as a data error rather than binned
        // somewhere silently.
        std::fs::write(
            &path,
            "{\"schema\":\"sapsim.metrics/v1\",\"counters\":[],\"gauges\":[],\
             \"histograms\":[{\"name\":\"lat\",\"count\":1,\"sum\":8,\"min\":8,\
             \"max\":8,\"buckets\":[[8,1]]}]}",
        )
        .unwrap();
        let argv: Vec<String> = vec!["metrics".into(), path.to_str().unwrap().into()];
        let err = run(&argv, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("canonical bucket boundary"));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn metrics_action_accepts_top_octave_bounds() {
        // u64::MAX is the last bucket's inclusive bound; merging it used
        // to be out of bounds for the 248-bucket array.
        let dir = std::env::temp_dir().join("sapsim-obs-metrics-topbound");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("top.metrics.json");
        std::fs::write(
            &path,
            format!(
                "{{\"schema\":\"sapsim.metrics/v1\",\"counters\":[],\"gauges\":[],\
                 \"histograms\":[{{\"name\":\"lat\",\"count\":1,\"sum\":{max},\
                 \"min\":{max},\"max\":{max},\"buckets\":[[{max},1]]}}]}}",
                max = u64::MAX
            ),
        )
        .unwrap();
        let argv: Vec<String> = vec!["metrics".into(), path.to_str().unwrap().into()];
        let mut buf = Vec::new();
        run(&argv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("lat: count=1"), "{text}");
    }

    #[test]
    fn prom_mode_renders_counter_families() {
        let dir = std::env::temp_dir().join("sapsim-obs-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        std::fs::write(&path, LOG).unwrap();
        let argv: Vec<String> = vec![
            "summary".into(),
            path.to_str().unwrap().into(),
            "--prom".into(),
        ];
        let mut buf = Vec::new();
        run(&argv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE sapsim_placements counter"));
        assert!(text.contains("sapsim_placements 812"));
    }
}
