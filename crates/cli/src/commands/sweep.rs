//! `sapsim sweep` — run a scenario grid from a manifest and compare the
//! runs.
//!
//! The manifest is a small JSON file (see
//! [`sapsim_sweep::parse_manifest`]) naming the grid axes. The grid runs
//! on the deterministic work-stealing pool: the printed report — and
//! every file written via `--out` — is byte-identical at any `--workers`
//! value, and each scenario matches a standalone `sapsim simulate` of
//! the same configuration. Only the `--obs-dir` JSONL logs and the
//! `--metrics-dir` snapshots sit outside that contract (they record
//! wall-clock timings and pool-scheduling detail).

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_sweep::{effective_workers, parse_manifest, run_sweep, SweepOptions};
use std::io::Write;
use std::path::Path;

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(
        argv,
        &["workers", "shard-threads", "out", "obs-dir", "metrics-dir"],
        &["json"],
    )?;
    let [manifest_path] = parsed.positionals() else {
        return Err(CliError::Usage(
            "sweep requires exactly one manifest file argument".into(),
        ));
    };
    let workers: usize = parsed.get_parsed("workers", 0)?;
    let shard_threads: usize = parsed.get_parsed("shard-threads", 0)?;
    let out_dir = parsed.get("out").map(str::to_string);
    let obs_dir = parsed.get("obs-dir").map(str::to_string);
    let metrics_dir = parsed.get("metrics-dir").map(str::to_string);
    let json = parsed.flag("json");

    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| CliError::Io(format!("cannot read {manifest_path}: {e}")))?;
    let manifest = parse_manifest(&text)?;
    let scenarios = manifest.spec.expand()?;

    let options = SweepOptions {
        workers,
        collect_artifacts: out_dir.is_some(),
        collect_obs: obs_dir.is_some(),
        collect_metrics: metrics_dir.is_some(),
        shard_threads,
    };
    if !json {
        writeln!(
            out,
            "sweep `{}`: {} scenarios on {} workers ...",
            manifest.name,
            scenarios.len(),
            effective_workers(workers, scenarios.len())
        )?;
    }
    let output = run_sweep(&scenarios, &options)?;

    if json {
        writeln!(out, "{}", output.report.to_json())?;
    } else {
        writeln!(out)?;
        write!(out, "{}", output.report.render())?;
    }

    if let Some(dir) = &out_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let files = [
            ("report.json", output.report.to_json()),
            ("report.txt", output.report.render()),
            ("cdf_overlay.csv", output.cdf_overlay_csv()),
            ("contention_overlay.csv", output.contention_overlay_csv()),
        ];
        for (name, contents) in files {
            write_file(&dir.join(name), &contents)?;
        }
        if !json {
            writeln!(out, "wrote report + overlay CSVs to {}", dir.display())?;
        }
    }

    if let Some(dir) = &obs_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let mut written = 0usize;
        for artifact in &output.artifacts {
            if let Some(jsonl) = &artifact.obs_jsonl {
                write_file(&dir.join(format!("{}.obs.jsonl", artifact.name)), jsonl)?;
                written += 1;
            }
        }
        if !json {
            writeln!(out, "wrote {written} obs logs to {}", dir.display())?;
        }
    }

    if let Some(dir) = &metrics_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let mut written = 0usize;
        for artifact in &output.artifacts {
            if let Some(json_line) = &artifact.metrics_json {
                let mut contents = json_line.clone();
                contents.push('\n');
                write_file(
                    &dir.join(format!("{}.metrics.json", artifact.name)),
                    &contents,
                )?;
                written += 1;
            }
        }
        if let Some(pool) = &output.sweep_metrics {
            let mut contents = pool.to_json();
            contents.push('\n');
            write_file(&dir.join("sweep.metrics.json"), &contents)?;
        }
        if !json {
            writeln!(
                out,
                "wrote {written} cell snapshots + sweep.metrics.json to {}",
                dir.display()
            )?;
        }
    }
    Ok(())
}

/// Write one artifact file with a path-bearing error.
fn write_file(path: &Path, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::Io(format!("cannot create {}: {e}", path.display())))
}
