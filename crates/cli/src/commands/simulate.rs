//! `sapsim simulate` — run and summarize, with optional snapshot
//! capture (`--snapshot-at`/`--snapshot-out`) and resume (`--resume`).

use super::{
    execute_with_obs, obs_args_from, parse_fault_spec, sim_config_from, ObsArgs, RunExec,
    SIM_BOOL_FLAGS, SIM_VALUE_OPTIONS,
};
use crate::args::Parsed;
use crate::error::CliError;
use sapsim_analysis::cdf::{utilization_cdf, VmResource};
use sapsim_analysis::contention::contention_aggregate;
use sapsim_core::{RunResult, SimConfig, SimSnapshot};
use sapsim_sim::{SimTime, MILLIS_PER_DAY};
use sapsim_sweep::RunSummary;
use std::io::Write;

/// Value options only `simulate` understands, on top of the shared sim
/// surface: snapshot capture and resume.
const SNAPSHOT_VALUE_OPTIONS: &[&str] = &["snapshot-at", "snapshot-out", "resume"];

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags: Vec<&str> = SIM_BOOL_FLAGS.iter().copied().chain(["json"]).collect();
    let options: Vec<&str> = SIM_VALUE_OPTIONS
        .iter()
        .chain(SNAPSHOT_VALUE_OPTIONS)
        .copied()
        .collect();
    let parsed = Parsed::parse(argv, &options, &flags)?;
    if !parsed.positionals().is_empty() {
        return Err(CliError::Usage(
            "simulate takes no positional arguments".into(),
        ));
    }
    if parsed.get("resume").is_some() {
        return run_resume(&parsed, out);
    }
    let cfg = sim_config_from(&parsed)?;
    let obs = obs_args_from(&parsed)?;
    let capture = capture_args(&parsed)?;

    if parsed.flag("json") {
        // Machine-readable mode: the only stdout line is the versioned
        // run summary. Obs and snapshot files are still written, but
        // their status lines are swallowed so the output stays a single
        // JSON object.
        let mut status = Vec::new();
        let result = execute(cfg, obs.as_ref(), capture, &mut status)?;
        writeln!(out, "{}", RunSummary::from_run(&result).to_json())?;
        return Ok(());
    }

    writeln!(
        out,
        "simulating {} days at scale {:.2} (policy {}, seed {}) ...",
        cfg.days,
        cfg.scale,
        cfg.policy.name(),
        cfg.seed
    )?;
    let result = execute(cfg, obs.as_ref(), capture, out)?;
    print_report(&result, out)
}

/// Parse the snapshot-capture pair. Both options or neither: a capture
/// instant without a destination (or vice versa) is a usage error.
fn capture_args(parsed: &Parsed) -> Result<Option<(SimTime, &str)>, CliError> {
    match (parsed.get("snapshot-at"), parsed.get("snapshot-out")) {
        (None, None) => Ok(None),
        (Some(_), None) => Err(CliError::Usage(
            "--snapshot-at requires --snapshot-out FILE".into(),
        )),
        (None, Some(_)) => Err(CliError::Usage(
            "--snapshot-out requires --snapshot-at DAYS".into(),
        )),
        (Some(raw), Some(path)) => {
            let days: f64 = raw.parse().map_err(|_| {
                CliError::Usage(format!("invalid value `{raw}` for `--snapshot-at`"))
            })?;
            if !days.is_finite() || days < 0.0 {
                return Err(CliError::Usage(format!(
                    "--snapshot-at: `{raw}` is not a non-negative number of days"
                )));
            }
            let at = SimTime::from_millis((days * MILLIS_PER_DAY as f64).round() as u64);
            Ok(Some((at, path)))
        }
    }
}

/// Run cold, capturing and writing the snapshot file when requested.
fn execute(
    cfg: SimConfig,
    obs: Option<&ObsArgs>,
    capture: Option<(SimTime, &str)>,
    out: &mut dyn Write,
) -> Result<RunResult, CliError> {
    let Some((at, path)) = capture else {
        let (result, _) = execute_with_obs(RunExec::Cold(cfg), obs, out)?;
        return Ok(result);
    };
    let (result, snap) = execute_with_obs(RunExec::Snapshot(cfg, at), obs, out)?;
    let snap = snap.expect("snapshot mode always captures");
    std::fs::write(path, snap.to_file_string())
        .map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
    writeln!(
        out,
        "snapshot: wrote day {:.2} state to {path}",
        at.as_millis() as f64 / MILLIS_PER_DAY as f64
    )?;
    Ok(result)
}

/// `--resume FILE`: load, verify, and run a captured snapshot to its
/// horizon. The run configuration is embedded in the snapshot, so every
/// config-shaping option conflicts; the exceptions are `--faults` —
/// which must *restate* the spec the snapshot was captured under (see
/// [`SimSnapshot::verify_fault_spec`]) — and `--shard-threads`, an
/// execution-only knob the snapshot never embeds (the resumed bytes are
/// identical at any value).
fn run_resume(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let path = parsed.get("resume").expect("checked by the caller");
    for opt in SIM_VALUE_OPTIONS {
        let embedded = !matches!(
            *opt,
            "faults"
                | "obs-out"
                | "obs-chrome"
                | "obs-sample"
                | "obs-ring"
                | "metrics-out"
                | "shard-threads"
        );
        if embedded && parsed.get(opt).is_some() {
            return Err(CliError::Usage(format!(
                "--{opt} conflicts with --resume: the snapshot embeds the run configuration"
            )));
        }
    }
    for opt in ["snapshot-at", "snapshot-out"] {
        if parsed.get(opt).is_some() {
            return Err(CliError::Usage(format!(
                "--{opt} cannot be combined with --resume"
            )));
        }
    }
    for flag in SIM_BOOL_FLAGS {
        if parsed.flag(flag) {
            return Err(CliError::Usage(format!(
                "--{flag} conflicts with --resume: the snapshot embeds the run configuration"
            )));
        }
    }

    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    // Corruption (truncation, schema drift, hash mismatch) is a data
    // error; a loadable snapshot whose fault spec is not restated is a
    // configuration error.
    let mut snap =
        SimSnapshot::from_file_str(&text).map_err(|e| CliError::Data(format!("{path}: {e}")))?;
    let given = match parsed.get("faults") {
        Some(spec) => Some(parse_fault_spec(spec)?),
        None => None,
    };
    snap.verify_fault_spec(given.as_ref())?;
    snap.set_shard_threads(parsed.get_parsed("shard-threads", 0usize)?);
    let obs = obs_args_from(parsed)?;

    if parsed.flag("json") {
        let mut status = Vec::new();
        let (result, _) = execute_with_obs(RunExec::Resume(&snap), obs.as_ref(), &mut status)?;
        writeln!(out, "{}", RunSummary::from_run(&result).to_json())?;
        return Ok(());
    }

    let cfg = snap.config();
    writeln!(
        out,
        "resuming day {:.2} of {} at scale {:.2} (policy {}, seed {}) from {path} ...",
        snap.at().as_millis() as f64 / MILLIS_PER_DAY as f64,
        cfg.days,
        cfg.scale,
        cfg.policy.name(),
        cfg.seed
    )?;
    let (result, _) = execute_with_obs(RunExec::Resume(&snap), obs.as_ref(), out)?;
    print_report(&result, out)
}

/// The human-readable run report shared by the cold and resume paths.
fn print_report(result: &RunResult, out: &mut dyn Write) -> Result<(), CliError> {
    let topo = result.cloud.topology();
    writeln!(out, "\ninfrastructure:")?;
    writeln!(
        out,
        "  {} hypervisors in {} building blocks across {} DCs",
        topo.nodes().len(),
        topo.bbs().len(),
        topo.dcs().len()
    )?;

    let s = &result.stats;
    writeln!(out, "\nscheduling:")?;
    writeln!(
        out,
        "  placements: {} attempted, {:.1}% placed ({} fragmented, {} no-candidate)",
        s.placements_attempted,
        s.placement_success_rate() * 100.0,
        s.failed_fragmented,
        s.failed_no_candidate
    )?;
    writeln!(
        out,
        "  retries: {} | DRS migrations: {} | cross-BB migrations: {}",
        s.placement_retries, s.drs_migrations, s.cross_bb_migrations
    )?;
    writeln!(
        out,
        "  resizes: {} ({} in place, {} migrated, {} failed)",
        s.resizes_attempted, s.resizes_in_place, s.resizes_migrated, s.resizes_failed
    )?;
    writeln!(
        out,
        "  maintenance: {} windows ({} aborted), {} evacuations",
        s.maintenance_windows, s.maintenance_aborted, s.evacuations
    )?;
    writeln!(
        out,
        "  population: peak {} VMs, {} at window end, {} departures",
        s.peak_vm_count, s.final_vm_count, s.departures
    )?;

    if !result.config.faults.is_none() || !s.faults.is_zero() {
        let f = &s.faults;
        writeln!(out, "\nfaults:")?;
        writeln!(
            out,
            "  host failures: {} ({} recovered), {} straggler nodes",
            f.host_failures, f.host_recoveries, f.straggler_nodes
        )?;
        writeln!(
            out,
            "  evacuations: {} ({} replaced, {} retries, {} lost, {} still pending, peak queue {})",
            f.evacuated,
            f.evac_replaced,
            f.evac_retries,
            f.evac_lost,
            f.evac_pending_end,
            f.evac_pending_peak
        )?;
        writeln!(
            out,
            "  telemetry: {} dropout windows, {} samples dropped",
            f.dropout_windows, f.dropped_samples
        )?;
    }

    writeln!(out, "\nthe paper's headline findings on this run:")?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(result, VmResource::Cpu).summary_line()
    )?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(result, VmResource::Memory).summary_line()
    )?;
    let agg = contention_aggregate(result);
    writeln!(
        out,
        "  contention: peak daily mean {:.2}%, peak p95 {:.2}%, max sample {:.1}%",
        agg.peak_mean(),
        agg.peak_p95(),
        agg.peak_max()
    )?;

    if result.profile.enabled() {
        writeln!(
            out,
            "\nevent-loop profile (wall clock, not simulation time):"
        )?;
        writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "mean us", "max us"
        )?;
        for (kind, stat) in result.profile.phases() {
            if stat.count == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<16} {:>10} {:>12.1} {:>10} {:>10}",
                kind.name(),
                stat.count,
                stat.total_us as f64 / 1000.0,
                stat.mean_us(),
                stat.max_us
            )?;
        }
        writeln!(
            out,
            "  wall clock total: {:.1} ms",
            result.profile.wall_us() as f64 / 1000.0
        )?;
    }
    Ok(())
}
