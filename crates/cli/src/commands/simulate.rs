//! `sapsim simulate` — run and summarize.

use super::{obs_args_from, run_with_obs, sim_config_from, SIM_BOOL_FLAGS, SIM_VALUE_OPTIONS};
use crate::args::Parsed;
use crate::error::CliError;
use sapsim_analysis::cdf::{utilization_cdf, VmResource};
use sapsim_analysis::contention::contention_aggregate;
use sapsim_sweep::RunSummary;
use std::io::Write;

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags: Vec<&str> = SIM_BOOL_FLAGS.iter().copied().chain(["json"]).collect();
    let parsed = Parsed::parse(argv, SIM_VALUE_OPTIONS, &flags)?;
    if !parsed.positionals().is_empty() {
        return Err(CliError::Usage(
            "simulate takes no positional arguments".into(),
        ));
    }
    let cfg = sim_config_from(&parsed)?;
    let obs = obs_args_from(&parsed)?;

    if parsed.flag("json") {
        // Machine-readable mode: the only stdout line is the versioned
        // run summary. Obs files are still written, but their status
        // lines are swallowed so the output stays a single JSON object.
        let mut status = Vec::new();
        let result = run_with_obs(cfg, obs.as_ref(), &mut status)?;
        writeln!(out, "{}", RunSummary::from_run(&result).to_json())?;
        return Ok(());
    }

    writeln!(
        out,
        "simulating {} days at scale {:.2} (policy {}, seed {}) ...",
        cfg.days,
        cfg.scale,
        cfg.policy.name(),
        cfg.seed
    )?;
    let result = run_with_obs(cfg, obs.as_ref(), out)?;

    let topo = result.cloud.topology();
    writeln!(out, "\ninfrastructure:")?;
    writeln!(
        out,
        "  {} hypervisors in {} building blocks across {} DCs",
        topo.nodes().len(),
        topo.bbs().len(),
        topo.dcs().len()
    )?;

    let s = &result.stats;
    writeln!(out, "\nscheduling:")?;
    writeln!(
        out,
        "  placements: {} attempted, {:.1}% placed ({} fragmented, {} no-candidate)",
        s.placements_attempted,
        s.placement_success_rate() * 100.0,
        s.failed_fragmented,
        s.failed_no_candidate
    )?;
    writeln!(
        out,
        "  retries: {} | DRS migrations: {} | cross-BB migrations: {}",
        s.placement_retries, s.drs_migrations, s.cross_bb_migrations
    )?;
    writeln!(
        out,
        "  resizes: {} ({} in place, {} migrated, {} failed)",
        s.resizes_attempted, s.resizes_in_place, s.resizes_migrated, s.resizes_failed
    )?;
    writeln!(
        out,
        "  maintenance: {} windows ({} aborted), {} evacuations",
        s.maintenance_windows, s.maintenance_aborted, s.evacuations
    )?;
    writeln!(
        out,
        "  population: peak {} VMs, {} at window end, {} departures",
        s.peak_vm_count, s.final_vm_count, s.departures
    )?;

    if !result.config.faults.is_none() || !s.faults.is_zero() {
        let f = &s.faults;
        writeln!(out, "\nfaults:")?;
        writeln!(
            out,
            "  host failures: {} ({} recovered), {} straggler nodes",
            f.host_failures, f.host_recoveries, f.straggler_nodes
        )?;
        writeln!(
            out,
            "  evacuations: {} ({} replaced, {} retries, {} lost, {} still pending, peak queue {})",
            f.evacuated,
            f.evac_replaced,
            f.evac_retries,
            f.evac_lost,
            f.evac_pending_end,
            f.evac_pending_peak
        )?;
        writeln!(
            out,
            "  telemetry: {} dropout windows, {} samples dropped",
            f.dropout_windows, f.dropped_samples
        )?;
    }

    writeln!(out, "\nthe paper's headline findings on this run:")?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(&result, VmResource::Cpu).summary_line()
    )?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(&result, VmResource::Memory).summary_line()
    )?;
    let agg = contention_aggregate(&result);
    writeln!(
        out,
        "  contention: peak daily mean {:.2}%, peak p95 {:.2}%, max sample {:.1}%",
        agg.peak_mean(),
        agg.peak_p95(),
        agg.peak_max()
    )?;

    if result.profile.enabled() {
        writeln!(
            out,
            "\nevent-loop profile (wall clock, not simulation time):"
        )?;
        writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "mean us", "max us"
        )?;
        for (kind, stat) in result.profile.phases() {
            if stat.count == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<16} {:>10} {:>12.1} {:>10} {:>10}",
                kind.name(),
                stat.count,
                stat.total_us as f64 / 1000.0,
                stat.mean_us(),
                stat.max_us
            )?;
        }
        writeln!(
            out,
            "  wall clock total: {:.1} ms",
            result.profile.wall_us() as f64 / 1000.0
        )?;
    }
    Ok(())
}
