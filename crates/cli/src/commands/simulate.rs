//! `sapsim simulate` — run and summarize.

use super::{obs_args_from, run_with_obs, sim_config_from, SIM_BOOL_FLAGS, SIM_VALUE_OPTIONS};
use crate::args::Parsed;
use sapsim_analysis::cdf::{utilization_cdf, VmResource};
use sapsim_analysis::contention::contention_aggregate;
use std::io::Write;

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let parsed =
        Parsed::parse(argv, SIM_VALUE_OPTIONS, SIM_BOOL_FLAGS).map_err(|e| e.to_string())?;
    if !parsed.positionals().is_empty() {
        return Err("simulate takes no positional arguments".into());
    }
    let cfg = sim_config_from(&parsed)?;
    let obs = obs_args_from(&parsed)?;
    let w = |e: std::io::Error| e.to_string();

    writeln!(
        out,
        "simulating {} days at scale {:.2} (policy {}, seed {}) ...",
        cfg.days,
        cfg.scale,
        cfg.policy.name(),
        cfg.seed
    )
    .map_err(w)?;
    let result = run_with_obs(cfg, obs.as_ref(), out)?;

    let topo = result.cloud.topology();
    writeln!(out, "\ninfrastructure:").map_err(w)?;
    writeln!(
        out,
        "  {} hypervisors in {} building blocks across {} DCs",
        topo.nodes().len(),
        topo.bbs().len(),
        topo.dcs().len()
    )
    .map_err(w)?;

    let s = &result.stats;
    writeln!(out, "\nscheduling:").map_err(w)?;
    writeln!(
        out,
        "  placements: {} attempted, {:.1}% placed ({} fragmented, {} no-candidate)",
        s.placements_attempted,
        s.placement_success_rate() * 100.0,
        s.failed_fragmented,
        s.failed_no_candidate
    )
    .map_err(w)?;
    writeln!(
        out,
        "  retries: {} | DRS migrations: {} | cross-BB migrations: {}",
        s.placement_retries, s.drs_migrations, s.cross_bb_migrations
    )
    .map_err(w)?;
    writeln!(
        out,
        "  resizes: {} ({} in place, {} migrated, {} failed)",
        s.resizes_attempted, s.resizes_in_place, s.resizes_migrated, s.resizes_failed
    )
    .map_err(w)?;
    writeln!(
        out,
        "  maintenance: {} windows ({} aborted), {} evacuations",
        s.maintenance_windows, s.maintenance_aborted, s.evacuations
    )
    .map_err(w)?;
    writeln!(
        out,
        "  population: peak {} VMs, {} at window end, {} departures",
        s.peak_vm_count, s.final_vm_count, s.departures
    )
    .map_err(w)?;

    if !result.config.faults.is_none() || !s.faults.is_zero() {
        let f = &s.faults;
        writeln!(out, "\nfaults:").map_err(w)?;
        writeln!(
            out,
            "  host failures: {} ({} recovered), {} straggler nodes",
            f.host_failures, f.host_recoveries, f.straggler_nodes
        )
        .map_err(w)?;
        writeln!(
            out,
            "  evacuations: {} ({} replaced, {} retries, {} lost, {} still pending, peak queue {})",
            f.evacuated,
            f.evac_replaced,
            f.evac_retries,
            f.evac_lost,
            f.evac_pending_end,
            f.evac_pending_peak
        )
        .map_err(w)?;
        writeln!(
            out,
            "  telemetry: {} dropout windows, {} samples dropped",
            f.dropout_windows, f.dropped_samples
        )
        .map_err(w)?;
    }

    writeln!(out, "\nthe paper's headline findings on this run:").map_err(w)?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(&result, VmResource::Cpu).summary_line()
    )
    .map_err(w)?;
    writeln!(
        out,
        "  {}",
        utilization_cdf(&result, VmResource::Memory).summary_line()
    )
    .map_err(w)?;
    let agg = contention_aggregate(&result);
    writeln!(
        out,
        "  contention: peak daily mean {:.2}%, peak p95 {:.2}%, max sample {:.1}%",
        agg.peak_mean(),
        agg.peak_p95(),
        agg.peak_max()
    )
    .map_err(w)?;

    if result.profile.enabled() {
        writeln!(
            out,
            "\nevent-loop profile (wall clock, not simulation time):"
        )
        .map_err(w)?;
        writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>10} {:>10}",
            "phase", "count", "total ms", "mean us", "max us"
        )
        .map_err(w)?;
        for (kind, stat) in result.profile.phases() {
            if stat.count == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<16} {:>10} {:>12.1} {:>10} {:>10}",
                kind.name(),
                stat.count,
                stat.total_us as f64 / 1000.0,
                stat.mean_us(),
                stat.max_us
            )
            .map_err(w)?;
        }
        writeln!(
            out,
            "  wall clock total: {:.1} ms",
            result.profile.wall_us() as f64 / 1000.0
        )
        .map_err(w)?;
    }
    Ok(())
}
