//! `sapsim tables` — the paper's static tables.

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_analysis::tables::{render_table3, render_table4, render_table5};
use std::io::Write;

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[], &[])?;
    if !parsed.positionals().is_empty() {
        return Err(CliError::Usage("tables takes no arguments".into()));
    }
    writeln!(out, "## Table 3 — dataset comparison\n")?;
    writeln!(out, "{}", render_table3())?;
    writeln!(out, "## Table 4 — metric catalog\n")?;
    writeln!(out, "{}", render_table4())?;
    writeln!(out, "## Table 5 — data centers\n")?;
    writeln!(out, "{}", render_table5())?;
    Ok(())
}
