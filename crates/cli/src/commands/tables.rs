//! `sapsim tables` — the paper's static tables.

use crate::args::Parsed;
use sapsim_analysis::tables::{render_table3, render_table4, render_table5};
use std::io::Write;

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let parsed = Parsed::parse(argv, &[], &[]).map_err(|e| e.to_string())?;
    if !parsed.positionals().is_empty() {
        return Err("tables takes no arguments".into());
    }
    let w = |e: std::io::Error| e.to_string();
    writeln!(out, "## Table 3 — dataset comparison\n").map_err(w)?;
    writeln!(out, "{}", render_table3()).map_err(w)?;
    writeln!(out, "## Table 4 — metric catalog\n").map_err(w)?;
    writeln!(out, "{}", render_table4()).map_err(w)?;
    writeln!(out, "## Table 5 — data centers\n").map_err(w)?;
    writeln!(out, "{}", render_table5()).map_err(w)?;
    Ok(())
}
