//! The `sapsim` subcommands.

pub mod export;
pub mod import;
pub mod obs;
pub mod simulate;
pub mod sweep;
pub mod tables;

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_core::obs::{JsonlRecorder, MetricsRecorder, MetricsRegistry, NullRecorder, ObsConfig, Recorder};
use sapsim_core::{
    FaultError, FaultSpec, PlacementGranularity, RunResult, SimConfig, SimDriver, SimError,
    SimSnapshot, SimTime,
};
use sapsim_scheduler::PolicyKind;
use std::fs::File;
use std::io::{BufWriter, Write};

/// Options shared by `simulate` and `export`.
pub const SIM_VALUE_OPTIONS: &[&str] = &[
    "scale",
    "days",
    "seed",
    "policy",
    "granularity",
    "overcommit",
    "anonymize",
    "obs-out",
    "obs-chrome",
    "obs-sample",
    "obs-ring",
    "metrics-out",
    "faults",
    "shard-threads",
];
/// Boolean flags shared by `simulate` and `export`.
pub const SIM_BOOL_FLAGS: &[&str] = &["no-drs", "cross-bb", "no-warmup", "progress"];

/// Build a [`SimConfig`] from parsed CLI arguments.
pub fn sim_config_from(parsed: &Parsed) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::default();
    cfg.scale = parsed.get_parsed("scale", 0.05)?;
    cfg.days = parsed.get_parsed("days", 5u64)?;
    cfg.seed = parsed.get_parsed("seed", 0u64)?;
    cfg.gp_cpu_overcommit = parsed.get_parsed("overcommit", 4.0)?;
    cfg.policy = parsed
        .get("policy")
        .unwrap_or("paper-default")
        .parse::<PolicyKind>()
        .map_err(CliError::Usage)?;
    cfg.granularity = parsed
        .get("granularity")
        .unwrap_or("bb")
        .parse::<PlacementGranularity>()
        .map_err(CliError::Usage)?;
    if parsed.flag("no-drs") {
        cfg.drs_enabled = false;
    }
    if parsed.flag("cross-bb") {
        cfg.cross_bb_enabled = true;
    }
    if parsed.flag("no-warmup") {
        cfg.warmup_days = 0;
    }
    if parsed.flag("progress") {
        cfg.progress = true;
    }
    if let Some(spec) = parsed.get("faults") {
        cfg.faults = parse_fault_spec(spec)?;
    }
    // Execution-only: shard workers for the spatially-partitioned event
    // loop. Never embedded in snapshots or summaries, so `--resume` may
    // restate it freely.
    cfg.shard_threads = parsed.get_parsed("shard-threads", 0usize)?;
    cfg.validate()?;
    Ok(cfg)
}

/// Parse `--faults`: either a path to a JSON spec file or an inline
/// `key=value,...` list (see [`sapsim_core::FaultSpec::parse_inline`]).
/// Syntax failures classify by where the spec came from (usage for
/// inline, data for a file); a well-formed spec with invalid knobs is a
/// configuration error either way.
pub(crate) fn parse_fault_spec(spec: &str) -> Result<FaultSpec, CliError> {
    if std::path::Path::new(spec).is_file() {
        let text = std::fs::read_to_string(spec)
            .map_err(|e| CliError::Io(format!("cannot read fault spec {spec}: {e}")))?;
        FaultSpec::from_json_str(&text).map_err(|e| match e {
            FaultError::InvalidSpec(_) => CliError::Config(SimError::FaultPlan(e)),
            other => CliError::Data(format!("fault spec {spec}: {other}")),
        })
    } else {
        FaultSpec::parse_inline(spec).map_err(|e| match e {
            FaultError::InvalidSpec(_) => CliError::Config(SimError::FaultPlan(e)),
            other => CliError::Usage(format!("--faults: {other}")),
        })
    }
}

/// Observability export destinations and recorder knobs, parsed from the
/// shared `--obs-*` options.
pub struct ObsArgs {
    /// Where to write the JSONL event log, if requested.
    pub jsonl_path: Option<String>,
    /// Where to write the Chrome trace, if requested.
    pub chrome_path: Option<String>,
    /// Where to write the `sapsim.metrics/v1` snapshot, if requested.
    pub metrics_path: Option<String>,
    /// Recorder configuration (sampling rate, ring capacity).
    pub config: ObsConfig,
}

/// Build the observability arguments from parsed CLI options. Returns
/// `Ok(None)` when no `--obs-*`/`--metrics-out` output was requested, so
/// callers fall back to the zero-cost
/// [`sapsim_core::obs::NullRecorder`] path.
pub fn obs_args_from(parsed: &Parsed) -> Result<Option<ObsArgs>, CliError> {
    let jsonl_path = parsed.get("obs-out").map(str::to_string);
    let chrome_path = parsed.get("obs-chrome").map(str::to_string);
    let metrics_path = parsed.get("metrics-out").map(str::to_string);
    if jsonl_path.is_none() && chrome_path.is_none() {
        // The sampling/ring knobs shape the event ring only; a pure
        // metrics run has no ring to shape.
        if parsed.get("obs-sample").is_some() || parsed.get("obs-ring").is_some() {
            return Err(CliError::Usage(
                "--obs-sample/--obs-ring have no effect without --obs-out or --obs-chrome".into(),
            ));
        }
        if metrics_path.is_none() {
            return Ok(None);
        }
    }
    let defaults = ObsConfig::default();
    let config = ObsConfig {
        decision_sample_rate: parsed.get_parsed("obs-sample", defaults.decision_sample_rate)?,
        ring_capacity: parsed.get_parsed("obs-ring", defaults.ring_capacity)?,
    };
    config.validate().map_err(SimError::from)?;
    Ok(Some(ObsArgs {
        jsonl_path,
        chrome_path,
        metrics_path,
        config,
    }))
}

/// How `simulate` drives the core: a plain cold run, a cold run that
/// also captures a [`SimSnapshot`] at an instant, or a resume of a
/// previously captured snapshot to its horizon.
pub enum RunExec<'a> {
    /// Run `config` cold from `SimTime::ZERO` to the horizon.
    Cold(SimConfig),
    /// Run cold, pausing at the instant to capture a snapshot.
    Snapshot(SimConfig, SimTime),
    /// Resume a captured snapshot (the config travels inside it).
    Resume(&'a SimSnapshot),
}

impl RunExec<'_> {
    /// Drive the core under `rec`. The snapshot slot is `Some` exactly
    /// for [`RunExec::Snapshot`].
    fn run<R: Recorder>(&self, rec: &mut R) -> Result<(RunResult, Option<SimSnapshot>), SimError> {
        match self {
            RunExec::Cold(cfg) => Ok((SimDriver::new(*cfg)?.run_with_recorder(rec), None)),
            RunExec::Snapshot(cfg, at) => {
                let (result, snap) = SimDriver::new(*cfg)?.run_with_snapshot(*at, rec)?;
                Ok((result, Some(snap)))
            }
            RunExec::Resume(snap) => Ok((SimDriver::resume_with_recorder(snap, rec)?, None)),
        }
    }
}

/// Run the simulation, with the observability recorder attached when any
/// `--obs-*`/`--metrics-out` output was requested. Writes the requested
/// export files and a one-line status per file to `out`.
///
/// A pure `--metrics-out` run uses the lightweight [`MetricsRecorder`]
/// (no event ring, no decision detail); requesting a JSONL log or Chrome
/// trace upgrades to a [`JsonlRecorder`] with the metrics registry
/// attached.
pub fn run_with_obs(
    cfg: SimConfig,
    obs: Option<&ObsArgs>,
    out: &mut dyn Write,
) -> Result<RunResult, CliError> {
    execute_with_obs(RunExec::Cold(cfg), obs, out).map(|(result, _)| result)
}

/// [`run_with_obs`], generalized over the [`RunExec`] drive mode so the
/// snapshot-capture and resume paths reuse the same recorder wiring.
pub fn execute_with_obs(
    exec: RunExec<'_>,
    obs: Option<&ObsArgs>,
    out: &mut dyn Write,
) -> Result<(RunResult, Option<SimSnapshot>), CliError> {
    let Some(obs) = obs else {
        return Ok(exec.run(&mut NullRecorder)?);
    };
    if obs.jsonl_path.is_none() && obs.chrome_path.is_none() {
        let mut rec = MetricsRecorder::new();
        let outcome = exec.run(&mut rec)?;
        let path = obs
            .metrics_path
            .as_deref()
            .expect("obs_args_from returns Some only when an output is set");
        write_metrics_snapshot(rec.registry(), path, out)?;
        return Ok(outcome);
    }
    let mut rec = JsonlRecorder::new(obs.config);
    if obs.metrics_path.is_some() {
        rec = rec.with_metrics();
    }
    let outcome = exec.run(&mut rec)?;
    if let Some(path) = &obs.jsonl_path {
        let file =
            File::create(path).map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
        let mut sink = BufWriter::new(file);
        rec.write_jsonl(&mut sink)?;
        sink.flush()?;
        writeln!(
            out,
            "obs: wrote {} events ({} dropped) to {path}",
            rec.len(),
            rec.dropped()
        )?;
    }
    if let Some(path) = &obs.chrome_path {
        let file =
            File::create(path).map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
        let mut sink = BufWriter::new(file);
        rec.write_chrome_trace(&mut sink)?;
        sink.flush()?;
        writeln!(
            out,
            "obs: wrote Chrome trace to {path} (open via chrome://tracing)"
        )?;
    }
    if let Some(path) = &obs.metrics_path {
        let registry = rec.metrics().expect("with_metrics was enabled above");
        write_metrics_snapshot(registry, path, out)?;
    }
    Ok(outcome)
}

/// Write one `sapsim.metrics/v1` JSON snapshot to `path` plus a status
/// line to `out`. The line is rendered through the `sapsim-api` envelope
/// writer, which owns the schema spelling.
fn write_metrics_snapshot(
    registry: &MetricsRegistry,
    path: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut json = sapsim_api::envelope::metrics_line(registry);
    json.push('\n');
    std::fs::write(path, &json)
        .map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
    writeln!(
        out,
        "obs: wrote metrics snapshot ({} series) to {path}",
        registry.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Parsed {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv, SIM_VALUE_OPTIONS, SIM_BOOL_FLAGS).unwrap()
    }

    #[test]
    fn defaults_build_a_valid_config() {
        let cfg = sim_config_from(&parse(&[])).unwrap();
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.days, 5);
        assert!(cfg.drs_enabled);
        assert!(!cfg.cross_bb_enabled);
    }

    #[test]
    fn options_map_through() {
        let cfg = sim_config_from(&parse(&[
            "--scale",
            "0.1",
            "--days",
            "3",
            "--policy",
            "contention-aware",
            "--granularity",
            "node",
            "--no-drs",
            "--cross-bb",
            "--no-warmup",
            "--overcommit",
            "2.5",
        ]))
        .unwrap();
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.days, 3);
        assert_eq!(cfg.policy, PolicyKind::ContentionAware);
        assert_eq!(cfg.granularity, PlacementGranularity::Node);
        assert!(!cfg.drs_enabled);
        assert!(cfg.cross_bb_enabled);
        assert_eq!(cfg.warmup_days, 0);
        assert_eq!(cfg.gp_cpu_overcommit, 2.5);
    }

    #[test]
    fn bad_policy_and_scale_are_rejected() {
        let err = sim_config_from(&parse(&["--policy", "nope"])).unwrap_err();
        assert_eq!(err, CliError::Usage("unknown policy `nope`".into()));
        let err = sim_config_from(&parse(&["--scale", "500"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "validation failures are config errors");
        assert!(err.to_string().starts_with("invalid config:"));
        let err = sim_config_from(&parse(&["--scale", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn multi_region_scales_parse_and_validate() {
        // Scales above 1 replicate the studied region; the CLI accepts
        // them up to `SimConfig::MAX_SCALE`.
        let cfg = sim_config_from(&parse(&["--scale", "7.0"])).unwrap();
        assert_eq!(cfg.scale, 7.0);
        assert_eq!(
            sim_config_from(&parse(&["--scale", "100"])).unwrap().scale,
            SimConfig::MAX_SCALE
        );
    }

    #[test]
    fn inline_fault_spec_maps_through() {
        let cfg = sim_config_from(&parse(&[
            "--faults",
            "fail=6.0,downtime=12,straggler=0.2,slowdown=0.7,dropout=3.0",
        ]))
        .unwrap();
        assert_eq!(cfg.faults.host_fail_rate_per_month, 6.0);
        assert_eq!(cfg.faults.host_downtime_hours, 12.0);
        assert_eq!(cfg.faults.straggler_fraction, 0.2);
        assert_eq!(cfg.faults.dropout_rate_per_month, 3.0);
        assert!(!cfg.faults.is_none());
        // No flag at all leaves the fault layer inert.
        assert!(sim_config_from(&parse(&[])).unwrap().faults.is_none());
    }

    #[test]
    fn fault_spec_file_maps_through() {
        let dir = std::env::temp_dir().join("sapsim-cli-mod-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        std::fs::write(&path, r#"{"host_fail_rate_per_month": 2.5}"#).unwrap();
        let cfg = sim_config_from(&parse(&["--faults", path.to_str().unwrap()])).unwrap();
        assert_eq!(cfg.faults.host_fail_rate_per_month, 2.5);
        assert_eq!(
            cfg.faults.evac_retry_limit,
            FaultSpec::none().evac_retry_limit
        );
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        let err = sim_config_from(&parse(&["--faults", "bogus-key=1"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "inline syntax is a usage error");
        let err = sim_config_from(&parse(&["--faults", "fail=-2"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "a parseable-but-invalid spec is config");
    }

    #[test]
    fn no_obs_flags_means_no_recorder() {
        assert!(obs_args_from(&parse(&[])).unwrap().is_none());
    }

    #[test]
    fn obs_out_enables_recorder_with_defaults() {
        let obs = obs_args_from(&parse(&["--obs-out", "run.jsonl"]))
            .unwrap()
            .unwrap();
        assert_eq!(obs.jsonl_path.as_deref(), Some("run.jsonl"));
        assert!(obs.chrome_path.is_none());
        let defaults = ObsConfig::default();
        assert_eq!(
            obs.config.decision_sample_rate,
            defaults.decision_sample_rate
        );
        assert_eq!(obs.config.ring_capacity, defaults.ring_capacity);
    }

    #[test]
    fn obs_knobs_map_through() {
        let obs = obs_args_from(&parse(&[
            "--obs-chrome",
            "trace.json",
            "--obs-sample",
            "0.25",
            "--obs-ring",
            "1024",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(obs.chrome_path.as_deref(), Some("trace.json"));
        assert_eq!(obs.config.decision_sample_rate, 0.25);
        assert_eq!(obs.config.ring_capacity, 1024);
    }

    #[test]
    fn obs_knobs_without_an_output_are_rejected() {
        let err = obs_args_from(&parse(&["--obs-sample", "0.5"])).unwrap_err();
        assert!(err.to_string().contains("--obs-out"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn progress_flag_maps_through() {
        assert!(!sim_config_from(&parse(&[])).unwrap().progress);
        assert!(sim_config_from(&parse(&["--progress"])).unwrap().progress);
    }

    #[test]
    fn shard_threads_maps_through() {
        assert_eq!(sim_config_from(&parse(&[])).unwrap().shard_threads, 0);
        let cfg = sim_config_from(&parse(&["--shard-threads", "4"])).unwrap();
        assert_eq!(cfg.shard_threads, 4);
        let err = sim_config_from(&parse(&["--shard-threads", "many"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "unparseable counts are usage errors");
    }

    #[test]
    fn metrics_out_alone_enables_the_metrics_recorder_path() {
        let obs = obs_args_from(&parse(&["--metrics-out", "run.metrics.json"]))
            .unwrap()
            .unwrap();
        assert_eq!(obs.metrics_path.as_deref(), Some("run.metrics.json"));
        assert!(obs.jsonl_path.is_none());
        assert!(obs.chrome_path.is_none());
    }

    #[test]
    fn metrics_out_composes_with_obs_out() {
        let obs = obs_args_from(&parse(&[
            "--obs-out",
            "run.jsonl",
            "--metrics-out",
            "run.metrics.json",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(obs.jsonl_path.as_deref(), Some("run.jsonl"));
        assert_eq!(obs.metrics_path.as_deref(), Some("run.metrics.json"));
    }

    #[test]
    fn ring_knobs_with_only_metrics_out_are_still_rejected() {
        // The ring/sampling knobs shape the event ring; a pure metrics
        // run has none, so silently ignoring them would mislead.
        let err =
            obs_args_from(&parse(&["--metrics-out", "m.json", "--obs-ring", "64"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn metrics_snapshot_is_written_and_announced() {
        let dir = std::env::temp_dir().join("sapsim-cli-mod-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.metrics.json");
        let path_str = path.to_str().unwrap().to_string();
        let mut cfg = SimConfig::default();
        cfg.scale = 0.02;
        cfg.days = 1;
        cfg.warmup_days = 0;
        let obs = ObsArgs {
            jsonl_path: None,
            chrome_path: None,
            metrics_path: Some(path_str.clone()),
            config: ObsConfig::default(),
        };
        let mut out = Vec::new();
        let with_metrics = run_with_obs(cfg, Some(&obs), &mut out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(r#"{"schema":"sapsim.metrics/v1""#));
        assert!(text.ends_with('\n'));
        let status = String::from_utf8(out).unwrap();
        assert!(status.contains("metrics snapshot"));
        assert!(status.contains(&path_str));
        // The canonical result is byte-identical with metrics off.
        let plain = run_with_obs(cfg, None, &mut Vec::new()).unwrap();
        assert_eq!(with_metrics.canonical_bytes(), plain.canonical_bytes());
    }

    #[test]
    fn invalid_obs_knobs_are_rejected() {
        assert!(obs_args_from(&parse(&["--obs-out", "x", "--obs-sample", "1.5"])).is_err());
        assert!(obs_args_from(&parse(&["--obs-out", "x", "--obs-ring", "0"])).is_err());
        assert!(obs_args_from(&parse(&["--obs-out", "x", "--obs-ring", "nope"])).is_err());
    }
}
