//! The `sapsim` subcommands.

pub mod export;
pub mod import;
pub mod simulate;
pub mod tables;

use crate::args::Parsed;
use sapsim_core::{PlacementGranularity, SimConfig};
use sapsim_scheduler::PolicyKind;

/// Options shared by `simulate` and `export`.
pub const SIM_VALUE_OPTIONS: &[&str] = &[
    "scale",
    "days",
    "seed",
    "policy",
    "granularity",
    "overcommit",
    "anonymize",
];
/// Boolean flags shared by `simulate` and `export`.
pub const SIM_BOOL_FLAGS: &[&str] = &["no-drs", "cross-bb", "no-warmup"];

/// Build a [`SimConfig`] from parsed CLI arguments.
pub fn sim_config_from(parsed: &Parsed) -> Result<SimConfig, String> {
    let mut cfg = SimConfig {
        scale: parsed.get_parsed("scale", 0.05).map_err(|e| e.to_string())?,
        days: parsed.get_parsed("days", 5u64).map_err(|e| e.to_string())?,
        seed: parsed.get_parsed("seed", 0u64).map_err(|e| e.to_string())?,
        gp_cpu_overcommit: parsed
            .get_parsed("overcommit", 4.0)
            .map_err(|e| e.to_string())?,
        ..SimConfig::default()
    };
    cfg.policy = match parsed.get("policy").unwrap_or("paper-default") {
        "spread" => PolicyKind::Spread,
        "pack-memory" => PolicyKind::PackMemory,
        "paper-default" => PolicyKind::PaperDefault,
        "contention-aware" => PolicyKind::ContentionAware,
        "lifetime-aware" => PolicyKind::LifetimeAware,
        other => return Err(format!("unknown policy `{other}`")),
    };
    cfg.granularity = match parsed.get("granularity").unwrap_or("bb") {
        "bb" => PlacementGranularity::BuildingBlock,
        "node" => PlacementGranularity::Node,
        other => return Err(format!("unknown granularity `{other}` (use bb|node)")),
    };
    if parsed.flag("no-drs") {
        cfg.drs_enabled = false;
    }
    if parsed.flag("cross-bb") {
        cfg.cross_bb_enabled = true;
    }
    if parsed.flag("no-warmup") {
        cfg.warmup_days = 0;
    }
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Parsed {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv, SIM_VALUE_OPTIONS, SIM_BOOL_FLAGS).unwrap()
    }

    #[test]
    fn defaults_build_a_valid_config() {
        let cfg = sim_config_from(&parse(&[])).unwrap();
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.days, 5);
        assert!(cfg.drs_enabled);
        assert!(!cfg.cross_bb_enabled);
    }

    #[test]
    fn options_map_through() {
        let cfg = sim_config_from(&parse(&[
            "--scale",
            "0.1",
            "--days",
            "3",
            "--policy",
            "contention-aware",
            "--granularity",
            "node",
            "--no-drs",
            "--cross-bb",
            "--no-warmup",
            "--overcommit",
            "2.5",
        ]))
        .unwrap();
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.days, 3);
        assert_eq!(cfg.policy, PolicyKind::ContentionAware);
        assert_eq!(cfg.granularity, PlacementGranularity::Node);
        assert!(!cfg.drs_enabled);
        assert!(cfg.cross_bb_enabled);
        assert_eq!(cfg.warmup_days, 0);
        assert_eq!(cfg.gp_cpu_overcommit, 2.5);
    }

    #[test]
    fn bad_policy_and_scale_are_rejected() {
        assert!(sim_config_from(&parse(&["--policy", "nope"])).is_err());
        assert!(sim_config_from(&parse(&["--scale", "7.0"])).is_err());
    }
}
