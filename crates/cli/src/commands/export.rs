//! `sapsim export` — run a simulation and write the dataset CSV.

use super::{obs_args_from, run_with_obs, sim_config_from, SIM_BOOL_FLAGS, SIM_VALUE_OPTIONS};
use crate::args::Parsed;
use crate::error::CliError;
use sapsim_trace::TraceWriter;
use std::fs::File;
use std::io::{BufWriter, Write};

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, SIM_VALUE_OPTIONS, SIM_BOOL_FLAGS)?;
    let [path] = parsed.positionals() else {
        return Err(CliError::Usage(
            "export requires exactly one output file argument".into(),
        ));
    };
    let cfg = sim_config_from(&parsed)?;
    let obs = obs_args_from(&parsed)?;

    writeln!(
        out,
        "simulating {} days at scale {:.2} (seed {}) ...",
        cfg.days, cfg.scale, cfg.seed
    )?;
    let result = run_with_obs(cfg, obs.as_ref(), out)?;

    let mut writer = match parsed.get("anonymize") {
        Some(salt_raw) => {
            let salt: u64 = salt_raw.parse().map_err(|_| {
                CliError::Usage(format!("invalid salt `{salt_raw}` for --anonymize"))
            })?;
            TraceWriter::anonymized(salt)
        }
        None => TraceWriter::plain(),
    };
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
    let mut sink = BufWriter::new(file);
    let summary = writer.write_store(&result.store, &mut sink)?;
    sink.flush()?;
    writeln!(
        out,
        "wrote {} rows across {} series to {path}",
        summary.rows, summary.series
    )?;
    Ok(())
}
