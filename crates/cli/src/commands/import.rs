//! `sapsim import` — load a dataset CSV and summarize it. Works on both
//! simulator exports and (shape-wise) the published Zenodo dataset.

use crate::args::Parsed;
use crate::error::CliError;
use sapsim_telemetry::{summary, MetricId};
use sapsim_trace::TraceReader;
use std::fs::File;
use std::io::{BufReader, Write};

/// Execute the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &["days"], &[])?;
    let [path] = parsed.positionals() else {
        return Err(CliError::Usage(
            "import requires exactly one input file argument".into(),
        ));
    };
    let days: usize = parsed.get_parsed("days", 30usize)?;

    let file = File::open(path).map_err(|e| CliError::Io(format!("cannot open {path}: {e}")))?;
    let (store, loaded) = TraceReader::new().read_into_store(&mut BufReader::new(file), days)?;
    writeln!(
        out,
        "loaded {} rows ({} skipped) into {} series",
        loaded.rows,
        loaded.skipped,
        store.raw_series_count()
    )?;

    writeln!(out, "\nper-metric coverage:")?;
    for metric in MetricId::ALL {
        let series = store.series_of(metric);
        if series.is_empty() {
            continue;
        }
        let means: Vec<f64> = series.iter().filter_map(|(_, s)| s.mean()).collect();
        let samples: usize = series.iter().map(|(_, s)| s.len()).sum();
        writeln!(
            out,
            "  {:<52} {:>6} series {:>10} samples  mean {:>12.3}  p95 {:>12.3}",
            metric.name(),
            series.len(),
            samples,
            summary::mean(&means).unwrap_or(0.0),
            summary::quantile(&means, 0.95).unwrap_or(0.0),
        )?;
    }
    Ok(())
}
