//! # sapsim-cli — the `sapsim` command
//!
//! A small command-line front end over the workspace:
//!
//! ```text
//! sapsim simulate [OPTIONS]        run a simulation and print a summary
//! sapsim export   [OPTIONS] FILE   run a simulation and export the dataset CSV
//! sapsim import   FILE [OPTIONS]   load a dataset CSV and print summary stats
//! sapsim obs summary FILE          summarize an --obs-out JSONL log
//! sapsim tables                    print the static paper tables (3, 4, 5)
//! sapsim help                      this text
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's only CLI is this thin
//! wrapper; a parser dependency would outweigh it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};

/// Top-level usage text.
pub const USAGE: &str = "\
sapsim — reproduction of the SAP Cloud Infrastructure dataset study (IMC '25)

USAGE:
    sapsim <COMMAND> [OPTIONS]

COMMANDS:
    simulate    run a simulation and print the headline findings
    export      run a simulation and write the telemetry as dataset CSV
    import      load a dataset CSV (simulated or real) and summarize it
    obs         summarize an observability JSONL log (obs summary FILE)
    tables      print the paper's static tables (3, 4, 5)
    help        show this message

SIMULATION OPTIONS (simulate, export):
    --scale <F>          fleet/workload scale, 0 < F <= 1   [default: 0.05]
    --days <N>           observed days                      [default: 5]
    --seed <N>           RNG seed                           [default: 0]
    --policy <NAME>      spread | pack-memory | paper-default |
                         contention-aware | lifetime-aware  [default: paper-default]
    --granularity <G>    bb | node                          [default: bb]
    --no-drs             disable the DRS-style rebalancer
    --cross-bb           enable the cross-building-block rebalancer
    --overcommit <F>     general-purpose vCPU:pCPU ratio    [default: 4.0]
    --no-warmup          skip the 7-day pre-observation ramp
    --faults <SPEC>      inject deterministic faults: a JSON spec file, or
                         inline key=value pairs (fail, downtime, straggler,
                         slowdown, dropout, dropout-hours, retries, backoff),
                         e.g. --faults fail=6.0,downtime=12,dropout=2.0

OBSERVABILITY OPTIONS (simulate, export):
    --obs-out <FILE>     write the decision/span event log as JSON Lines
    --obs-chrome <FILE>  write a chrome://tracing span trace
    --obs-sample <F>     decision audit sampling rate in [0, 1] [default: 1.0]
    --obs-ring <N>       event ring-buffer capacity           [default: 65536]

OBS COMMAND:
    obs summary <FILE>   aggregate a JSONL log: span timing, decision
                         outcomes, rejection totals, counters
    --prom               render the log's counters in Prometheus text format

EXPORT OPTIONS:
    --anonymize <SALT>   consistently hash entity names (like the
                         published dataset)

IMPORT OPTIONS:
    --days <N>           rollup window of the loaded store  [default: 30]
";

/// Entry point shared by the binary and the tests: returns the process
/// exit code.
pub fn run(argv: &[String]) -> i32 {
    let mut out = std::io::stdout();
    match run_to(argv, &mut out) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("sapsim: error: {msg}");
            eprintln!("run `sapsim help` for usage");
            2
        }
    }
}

/// Like [`run`], but writing to an arbitrary sink (testable).
pub fn run_to(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    let Some(command) = argv.first() else {
        writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
        return Ok(());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "simulate" => commands::simulate::run(rest, out),
        "export" => commands::export::run(rest, out),
        "import" => commands::import::run(rest, out),
        "obs" => commands::obs::run(rest, out),
        "tables" => commands::tables::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
