//! # sapsim-cli — the `sapsim` command
//!
//! A small command-line front end over the workspace:
//!
//! ```text
//! sapsim simulate [OPTIONS]        run a simulation and print a summary
//! sapsim sweep    MANIFEST [OPTS]  run a deterministic scenario grid
//! sapsim export   [OPTIONS] FILE   run a simulation and export the dataset CSV
//! sapsim import   FILE [OPTIONS]   load a dataset CSV and print summary stats
//! sapsim obs summary FILE          summarize an --obs-out JSONL log
//! sapsim obs metrics FILE...       merge sapsim.metrics/v1 snapshots
//! sapsim serve    [OPTIONS]        run the placement service (or drive one)
//! sapsim tables                    print the static paper tables (3, 4, 5)
//! sapsim help                      this text
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's only CLI is this thin
//! wrapper; a parser dependency would outweigh it). Failures are typed
//! ([`CliError`]) and map to stable exit codes: `2` usage, `3` invalid
//! configuration, `4` I/O, `5` malformed input data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;
pub mod serve;

pub use args::{ArgError, Parsed};
pub use error::CliError;

/// Top-level usage text.
pub const USAGE: &str = "\
sapsim — reproduction of the SAP Cloud Infrastructure dataset study (IMC '25)

USAGE:
    sapsim <COMMAND> [OPTIONS]

COMMANDS:
    simulate    run a simulation and print the headline findings
    sweep       run a scenario grid from a manifest and compare the runs
    export      run a simulation and write the telemetry as dataset CSV
    import      load a dataset CSV (simulated or real) and summarize it
    obs         inspect observability artifacts (obs summary | obs metrics)
    serve       run the incremental scheduler as a placement service
    tables      print the paper's static tables (3, 4, 5)
    help        show this message

SIMULATION OPTIONS (simulate, export):
    --scale <F>          fleet/workload scale, 0 < F <= 100 [default: 0.05]
                         values above 1 replicate the studied region into a
                         multi-region estate (e.g. 10 = ten regions)
    --days <N>           observed days                      [default: 5]
    --seed <N>           RNG seed                           [default: 0]
    --policy <NAME>      spread | pack-memory | paper-default |
                         contention-aware | lifetime-aware  [default: paper-default]
    --granularity <G>    bb | node                          [default: bb]
    --no-drs             disable the DRS-style rebalancer
    --cross-bb           enable the cross-building-block rebalancer
    --overcommit <F>     general-purpose vCPU:pCPU ratio    [default: 4.0]
    --no-warmup          skip the 7-day pre-observation ramp
    --progress           live heartbeat on stderr (sim-day, events/s, live
                         VMs, ETA); observation only, results unchanged
    --faults <SPEC>      inject deterministic faults: a JSON spec file, or
                         inline key=value pairs (fail, downtime, straggler,
                         slowdown, dropout, dropout-hours, retries, backoff),
                         e.g. --faults fail=6.0,downtime=12,dropout=2.0
    --shard-threads <N>  run a multi-region estate as per-region shards on N
                         workers, 0 = sequential [default: 0]; execution-only,
                         results are byte-identical at any value
    --json               (simulate only) print a single-line machine-readable
                         run summary (schema sapsim.run-summary/v1) instead
                         of the human-readable report

SNAPSHOT OPTIONS (simulate only):
    --snapshot-at <D>    pause a cold run at day D (fractions allowed) and
                         capture the full simulation state, then continue
                         to the horizon; results are byte-identical either way
    --snapshot-out <F>   where to write the sapsim.snapshot/v1 file
                         (required with --snapshot-at)
    --resume <FILE>      resume a captured snapshot to its horizon; the run
                         configuration travels inside the snapshot, so
                         config-shaping options conflict — except --faults,
                         which must restate the spec the snapshot was taken
                         under (a mismatch is a configuration error), and
                         --shard-threads, which is execution-only and may be
                         restated freely

SWEEP OPTIONS:
    sweep <MANIFEST>     JSON grid manifest: base-config overrides plus axes
                         (seeds, policies, granularities, drs, faults, scales)
    --workers <N>        worker threads, 0 = one per CPU    [default: 0]
                         the report bytes are identical at any worker count
    --shard-threads <N>  per-run shard workers layered under the pool,
                         0 = leave scenario configs untouched [default: 0];
                         capped at cores / workers so the two fan-outs never
                         oversubscribe; execution-only, bytes unchanged
    --out <DIR>          also write report.json, report.txt, and the CDF /
                         contention overlay CSVs into DIR
    --obs-dir <DIR>      record each run and write per-scenario JSONL logs
                         (wall-clock timings; outside the byte-equality
                         contract)
    --metrics-dir <DIR>  write a sapsim.metrics/v1 snapshot per cell plus
                         sweep.metrics.json with pool health (per-worker
                         cells, busy time, claim depth); wall-clock data
    --json               print the sweep report as single-line JSON
                         (schema sapsim.sweep-report/v1)

OBSERVABILITY OPTIONS (simulate, export):
    --obs-out <FILE>     write the decision/span event log as JSON Lines
    --obs-chrome <FILE>  write a chrome://tracing span trace
    --obs-sample <F>     decision audit sampling rate in [0, 1] [default: 1.0]
    --obs-ring <N>       event ring-buffer capacity           [default: 65536]
    --metrics-out <FILE> write the engine-health metrics registry (wheel
                         occupancy, cache hit rates, prune effectiveness,
                         scrape timings) as a sapsim.metrics/v1 snapshot

OBS COMMAND:
    obs summary <FILE>   aggregate a JSONL log: span timing, decision
                         outcomes, rejection totals, counters
    obs metrics <FILE>.. merge one or more sapsim.metrics/v1 snapshots:
                         counters add, gauges last-write-wins, histograms
                         merge bucket-wise
    --prom               render in Prometheus text format (counters only
                         for summary; full families for metrics)

SERVE OPTIONS:
    --listen <ADDR>      HTTP bind address        [default: 127.0.0.1:7070]
                         endpoints: POST /v1/request (one sapsim.api/v1
                         envelope per body), GET /v1/state, GET /healthz,
                         GET /metrics (Prometheus text)
    --tcp <ADDR>         also serve JSONL-over-TCP (one envelope per line,
                         persistent connections, same codec as HTTP)
    --workers <N>        read-path worker threads          [default: 4]
                         mutations always serialize onto one writer thread
    --strict             reject unknown envelope fields (default tolerates)
    --max-body-kib <N>   largest request body / line, KiB  [default: 64]
    --read-timeout-ms <N> socket read budget per request   [default: 2000]
    --scale/--seed/--policy/--granularity/--overcommit
                         estate knobs, as for simulate
    --script <FILE>      without --connect: apply the script's envelope
                         lines to an in-process engine and print each
                         response (the offline differential oracle)
    --connect <ADDR>     drive a running server over HTTP with --script
    --connect-tcp <ADDR> drive a running server over TCP with --script

EXPORT OPTIONS:
    --anonymize <SALT>   consistently hash entity names (like the
                         published dataset)

IMPORT OPTIONS:
    --days <N>           rollup window of the loaded store  [default: 30]

EXIT CODES:
    0 success | 2 usage error | 3 invalid configuration |
    4 I/O error | 5 malformed input data
";

/// Entry point shared by the binary and the tests: returns the process
/// exit code (`0` on success, otherwise [`CliError::exit_code`]).
pub fn run(argv: &[String]) -> i32 {
    let mut out = std::io::stdout();
    match run_to(argv, &mut out) {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("sapsim: error: {err}");
            eprintln!("run `sapsim help` for usage");
            err.exit_code()
        }
    }
}

/// Like [`run`], but writing to an arbitrary sink (testable).
pub fn run_to(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "simulate" => commands::simulate::run(rest, out),
        "sweep" => commands::sweep::run(rest, out),
        "export" => commands::export::run(rest, out),
        "import" => commands::import::run(rest, out),
        "obs" => commands::obs::run(rest, out),
        "serve" => serve::run(rest, out),
        "tables" => commands::tables::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}
