//! Property-based tests on the telemetry substrate: streaming rollups
//! agree with whole-series recomputation, and the summary statistics obey
//! their order relations.

use proptest::prelude::*;
use sapsim_telemetry::{summary, DailyRollup, RunningStat, TimeSeries};
use sapsim_sim::SimTime;

proptest! {
    /// A streamed rollup equals a brute-force recomputation over the same
    /// samples, day by day.
    #[test]
    fn rollup_matches_bruteforce(
        samples in prop::collection::vec((0u64..30 * 86_400, -100.0f64..100.0), 0..500),
    ) {
        let days = 30usize;
        let mut rollup = DailyRollup::new(days);
        for &(secs, v) in &samples {
            rollup.push(SimTime::from_secs(secs), v);
        }
        for day in 0..days {
            let brute: Vec<f64> = samples
                .iter()
                .filter(|&&(secs, _)| (secs / 86_400) as usize == day)
                .map(|&(_, v)| v)
                .collect();
            let expect = if brute.is_empty() {
                None
            } else {
                Some(brute.iter().sum::<f64>() / brute.len() as f64)
            };
            let got = rollup.day(day).and_then(|c| c.mean());
            match (expect, got) {
                (None, None) => {}
                (Some(e), Some(g)) => prop_assert!((e - g).abs() < 1e-9),
                other => prop_assert!(false, "mismatch on day {day}: {other:?}"),
            }
        }
    }

    /// Merging split accumulators equals accumulating everything at once.
    #[test]
    fn running_stat_merge_associativity(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        let mut whole = RunningStat::new();
        for (i, &v) in values.iter().enumerate() {
            if i < split { a.push(v) } else { b.push(v) }
            whole.push(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count, whole.count);
        prop_assert!((a.sum - whole.sum).abs() <= 1e-6 * whole.sum.abs().max(1.0));
        prop_assert_eq!(a.min, whole.min);
        prop_assert_eq!(a.max, whole.max);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e3f64..1e3, 1..300),
        qs in prop::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = summary::quantile(&values, q).unwrap();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            prop_assert!(v >= last - 1e-9, "monotone in q");
            last = v;
        }
    }

    /// The empirical CDF evaluated via fraction_below agrees with the
    /// sorted-pairs construction.
    #[test]
    fn cdf_consistency(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let cdf = summary::empirical_cdf(&values);
        prop_assert_eq!(cdf.len(), values.len());
        for &(v, frac) in &cdf {
            // fraction strictly below plus ties at v must bracket frac.
            let below = summary::fraction_below(&values, v);
            let at_or_below = values.iter().filter(|&&x| x <= v).count() as f64
                / values.len() as f64;
            prop_assert!(below <= frac + 1e-9);
            prop_assert!(frac <= at_or_below + 1e-9);
        }
    }

    /// Series range queries agree with linear filtering.
    #[test]
    fn series_range_matches_filter(
        times in prop::collection::vec(0u64..10_000, 1..100),
        window in (0u64..10_000, 0u64..10_000),
    ) {
        let mut sorted = times;
        sorted.sort_unstable();
        let mut series = TimeSeries::new();
        for (i, &t) in sorted.iter().enumerate() {
            series.push(SimTime::from_secs(t), i as f64);
        }
        let (a, b) = window;
        let (start, end) = (a.min(b), a.max(b));
        let got: Vec<f64> = series
            .range(SimTime::from_secs(start), SimTime::from_secs(end))
            .map(|(_, v)| v)
            .collect();
        let expect: Vec<f64> = sorted
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t >= start && t < end)
            .map(|(i, _)| i as f64)
            .collect();
        prop_assert_eq!(got, expect);
    }
}
