//! The in-memory time-series database.
//!
//! # Storage layout
//!
//! The store has two write paths with identical semantics:
//!
//! * **Dense tables** — when constructed via
//!   [`with_topology`](TsdbStore::with_topology), node-, building-block-,
//!   and region-scoped series live in flat `Vec`s indexed by
//!   `metric.index() * entity_count + entity_index`. Recording into a dense
//!   slot is a bounds check plus an indexed write: no hashing, no map
//!   rehashes, no per-sample allocation after the first touch of a slot.
//!   This is the path the simulator's scrape loop takes hundreds of millions
//!   of times per full-region run.
//! * **Dynamic map** — everything else (VM series, entities outside the
//!   pre-sized range, stores built with [`new`](TsdbStore::new) such as
//!   trace imports) falls back to a `BTreeMap<SeriesKey, _>`. A `BTreeMap`
//!   rather than a `HashMap` so that iteration — and therefore
//!   serialization — is deterministic.
//!
//! Which path a sample lands on is an internal detail: the query API
//! ([`series`](TsdbStore::series), [`rollup`](TsdbStore::rollup),
//! [`series_of`](TsdbStore::series_of), …) merges both views and behaves
//! identically for either construction.

use crate::metric::{EntityRef, MetricId};
use crate::rollup::DailyRollup;
use crate::series::TimeSeries;
use sapsim_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The identity of one series: `(metric, entity)` — equivalent to a
/// Prometheus metric name plus its label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Which metric.
    pub metric: MetricId,
    /// Which entity it is recorded against.
    pub entity: EntityRef,
}

impl SeriesKey {
    /// Construct a key.
    pub fn new(metric: MetricId, entity: EntityRef) -> Self {
        SeriesKey { metric, entity }
    }
}

/// Serialize the dynamic fallback map as a sequence of `(key, value)`
/// pairs. `SeriesKey` is a struct, which formats like JSON cannot use as a
/// map key directly; a pair sequence round-trips everywhere, and `BTreeMap`
/// iteration order makes the output deterministic.
mod series_map {
    use super::SeriesKey;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S, V>(map: &BTreeMap<SeriesKey, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
        V: Serialize,
    {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, D, V>(de: D) -> Result<BTreeMap<SeriesKey, V>, D::Error>
    where
        D: Deserializer<'de>,
        V: Deserialize<'de>,
    {
        let pairs = Vec::<(SeriesKey, V)>::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Resolved dense position of a `(metric, entity)` pair.
enum Slot {
    Node(usize),
    Bb(usize),
    Region(usize),
}

/// An in-memory TSDB holding raw series and/or daily rollups.
///
/// Two storage modes per series, chosen by the recording side:
///
/// * [`record`](TsdbStore::record) keeps every raw sample — needed for
///   interval-resolution analyses (Figure 8's ready-time spikes, Figure 9's
///   contention percentiles).
/// * [`record_rolled`](TsdbStore::record_rolled) streams into a per-day
///   aggregate — sufficient for the daily-average heatmaps and far smaller.
///
/// Both may be used for the same key; they are independent views.
///
/// Construct with [`with_topology`](TsdbStore::with_topology) when the
/// entity population is known up front (the simulator does) to get dense,
/// allocation-free recording for host/building-block/region series; plain
/// [`new`](TsdbStore::new) keeps every series in the dynamic map, which is
/// what trace import wants when the entity universe is discovered on the
/// fly. See the module docs for the layout details.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TsdbStore {
    rollup_days: usize,
    /// Nodes covered by the dense tables; `Node(i)` with `i >= node_count`
    /// falls back to the dynamic map.
    node_count: usize,
    /// Building blocks covered by the dense tables.
    bb_count: usize,
    /// Row-major `[metric.index()][node_index]`, len `COUNT * node_count`.
    node_raw: Vec<Option<TimeSeries>>,
    node_rolled: Vec<Option<DailyRollup>>,
    /// Row-major `[metric.index()][bb_index]`, len `COUNT * bb_count`.
    bb_raw: Vec<Option<TimeSeries>>,
    bb_rolled: Vec<Option<DailyRollup>>,
    /// `[metric.index()]`, len `COUNT` when dense, empty when dynamic.
    region_raw: Vec<Option<TimeSeries>>,
    region_rolled: Vec<Option<DailyRollup>>,
    /// Fallback for VM series and anything outside the dense range.
    #[serde(with = "series_map")]
    dyn_raw: BTreeMap<SeriesKey, TimeSeries>,
    #[serde(with = "series_map")]
    dyn_rolled: BTreeMap<SeriesKey, DailyRollup>,
}

impl TsdbStore {
    /// A fully dynamic store whose rollups cover `rollup_days` days (the
    /// paper's observation window is 30). Every series lives in the
    /// fallback map; use [`with_topology`](TsdbStore::with_topology) for
    /// the dense write path.
    pub fn new(rollup_days: usize) -> Self {
        TsdbStore {
            rollup_days,
            ..TsdbStore::default()
        }
    }

    /// A store with dense tables pre-sized for `node_count` nodes and
    /// `bb_count` building blocks (plus the region singleton). Samples for
    /// `Node(i)` / `Bb(i)` within those bounds — and for `Region` — take
    /// the flat-`Vec` write path; everything else behaves exactly as in a
    /// [`new`](TsdbStore::new) store.
    pub fn with_topology(rollup_days: usize, node_count: usize, bb_count: usize) -> Self {
        TsdbStore {
            rollup_days,
            node_count,
            bb_count,
            node_raw: vec![None; MetricId::COUNT * node_count],
            node_rolled: vec![None; MetricId::COUNT * node_count],
            bb_raw: vec![None; MetricId::COUNT * bb_count],
            bb_rolled: vec![None; MetricId::COUNT * bb_count],
            region_raw: vec![None; MetricId::COUNT],
            region_rolled: vec![None; MetricId::COUNT],
            dyn_raw: BTreeMap::new(),
            dyn_rolled: BTreeMap::new(),
        }
    }

    /// The configured rollup window.
    pub fn rollup_days(&self) -> usize {
        self.rollup_days
    }

    /// Dense position for the pair, or `None` when it must use the
    /// dynamic map. The region tables double as the "is this store dense
    /// at all" flag: empty in [`new`](TsdbStore::new) stores.
    fn dense_slot(&self, metric: MetricId, entity: EntityRef) -> Option<Slot> {
        let m = metric.index();
        match entity {
            EntityRef::Node(i) if (i as usize) < self.node_count => {
                Some(Slot::Node(m * self.node_count + i as usize))
            }
            EntityRef::Bb(i) if (i as usize) < self.bb_count => {
                Some(Slot::Bb(m * self.bb_count + i as usize))
            }
            EntityRef::Region if !self.region_raw.is_empty() => Some(Slot::Region(m)),
            _ => None,
        }
    }

    /// Append a raw sample.
    pub fn record(&mut self, metric: MetricId, entity: EntityRef, time: SimTime, value: f64) {
        let slot = match self.dense_slot(metric, entity) {
            Some(Slot::Node(i)) => &mut self.node_raw[i],
            Some(Slot::Bb(i)) => &mut self.bb_raw[i],
            Some(Slot::Region(i)) => &mut self.region_raw[i],
            None => {
                self.dyn_raw
                    .entry(SeriesKey::new(metric, entity))
                    .or_default()
                    .push(time, value);
                return;
            }
        };
        slot.get_or_insert_with(TimeSeries::new).push(time, value);
    }

    /// Stream a sample into the daily rollup.
    pub fn record_rolled(
        &mut self,
        metric: MetricId,
        entity: EntityRef,
        time: SimTime,
        value: f64,
    ) {
        let days = self.rollup_days;
        let slot = match self.dense_slot(metric, entity) {
            Some(Slot::Node(i)) => &mut self.node_rolled[i],
            Some(Slot::Bb(i)) => &mut self.bb_rolled[i],
            Some(Slot::Region(i)) => &mut self.region_rolled[i],
            None => {
                self.dyn_rolled
                    .entry(SeriesKey::new(metric, entity))
                    .or_insert_with(|| DailyRollup::new(days))
                    .push(time, value);
                return;
            }
        };
        slot.get_or_insert_with(|| DailyRollup::new(days))
            .push(time, value);
    }

    /// Raw series for a key, if any samples were recorded.
    pub fn series(&self, metric: MetricId, entity: EntityRef) -> Option<&TimeSeries> {
        match self.dense_slot(metric, entity) {
            Some(Slot::Node(i)) => self.node_raw[i].as_ref(),
            Some(Slot::Bb(i)) => self.bb_raw[i].as_ref(),
            Some(Slot::Region(i)) => self.region_raw[i].as_ref(),
            None => self.dyn_raw.get(&SeriesKey::new(metric, entity)),
        }
    }

    /// Daily rollup for a key, if any samples were streamed.
    pub fn rollup(&self, metric: MetricId, entity: EntityRef) -> Option<&DailyRollup> {
        match self.dense_slot(metric, entity) {
            Some(Slot::Node(i)) => self.node_rolled[i].as_ref(),
            Some(Slot::Bb(i)) => self.bb_rolled[i].as_ref(),
            Some(Slot::Region(i)) => self.region_rolled[i].as_ref(),
            None => self.dyn_rolled.get(&SeriesKey::new(metric, entity)),
        }
    }

    /// All raw series of one metric, in deterministic (entity-sorted) order.
    pub fn series_of(&self, metric: MetricId) -> Vec<(EntityRef, &TimeSeries)> {
        let mut v = Vec::new();
        let m = metric.index();
        for i in 0..self.node_count {
            if let Some(s) = &self.node_raw[m * self.node_count + i] {
                v.push((EntityRef::Node(i as u32), s));
            }
        }
        for i in 0..self.bb_count {
            if let Some(s) = &self.bb_raw[m * self.bb_count + i] {
                v.push((EntityRef::Bb(i as u32), s));
            }
        }
        if let Some(s) = self.region_raw.get(m).and_then(Option::as_ref) {
            v.push((EntityRef::Region, s));
        }
        for (k, s) in &self.dyn_raw {
            if k.metric == metric {
                v.push((k.entity, s));
            }
        }
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// All rollups of one metric, in deterministic (entity-sorted) order.
    pub fn rollups_of(&self, metric: MetricId) -> Vec<(EntityRef, &DailyRollup)> {
        let mut v = Vec::new();
        let m = metric.index();
        for i in 0..self.node_count {
            if let Some(r) = &self.node_rolled[m * self.node_count + i] {
                v.push((EntityRef::Node(i as u32), r));
            }
        }
        for i in 0..self.bb_count {
            if let Some(r) = &self.bb_rolled[m * self.bb_count + i] {
                v.push((EntityRef::Bb(i as u32), r));
            }
        }
        if let Some(r) = self.region_rolled.get(m).and_then(Option::as_ref) {
            v.push((EntityRef::Region, r));
        }
        for (k, r) in &self.dyn_rolled {
            if k.metric == metric {
                v.push((k.entity, r));
            }
        }
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// Merge the stores of per-region shards back into one estate store,
    /// in fixed estate order — the telemetry half of the sharded event
    /// loop's determinism contract.
    ///
    /// Every shard starts from a clone of `base` (the estate store at the
    /// partition instant) and then records only into its own slice of the
    /// estate: node and building-block series for the entities it owns
    /// (`node_owner[i]` / `bb_owner[i]` name the owning shard), plus the
    /// estate-wide `Region` gauges, which each shard appends to at the
    /// same replicated periodic ticks with its *local* value. The merge
    /// therefore:
    ///
    /// * takes each node/building-block row verbatim from its owner — no
    ///   other shard ever touched it, so this is exact;
    /// * sums the post-`base` region samples across shards tick by tick
    ///   ([`TimeSeries::sum_suffix`]), keeping the pre-partition prefix
    ///   untouched — exact for the integer-valued population gauges the
    ///   simulator records (f64 addition of integers below 2^53);
    /// * carries region rollups and the dynamic maps over from shard 0:
    ///   the recording loop writes neither, so they still equal `base`'s.
    ///
    /// Iteration is metric-major then entity-index order, so equal inputs
    /// produce byte-identical merged stores regardless of how many
    /// workers executed the shards.
    ///
    /// # Panics
    /// Panics if `shards` is empty or any shard's dense geometry does not
    /// match `node_owner`/`bb_owner`.
    pub fn merge_region_partitions(
        base: &TsdbStore,
        mut shards: Vec<TsdbStore>,
        node_owner: &[u32],
        bb_owner: &[u32],
    ) -> TsdbStore {
        assert!(!shards.is_empty(), "merging requires at least one shard");
        let node_count = node_owner.len();
        let bb_count = bb_owner.len();
        for sh in &shards {
            assert_eq!(sh.node_count, node_count, "shard/owner node geometry");
            assert_eq!(sh.bb_count, bb_count, "shard/owner bb geometry");
            assert!(
                !sh.region_raw.is_empty(),
                "sharded runs always use dense stores"
            );
        }
        let mut merged = TsdbStore::with_topology(base.rollup_days, node_count, bb_count);
        for m in 0..MetricId::COUNT {
            for i in 0..node_count {
                let owner = node_owner[i] as usize;
                let idx = m * node_count + i;
                merged.node_raw[idx] = shards[owner].node_raw[idx].take();
                merged.node_rolled[idx] = shards[owner].node_rolled[idx].take();
            }
            for i in 0..bb_count {
                let owner = bb_owner[i] as usize;
                let idx = m * bb_count + i;
                merged.bb_raw[idx] = shards[owner].bb_raw[idx].take();
                merged.bb_rolled[idx] = shards[owner].bb_rolled[idx].take();
            }
            let prefix = base
                .region_raw
                .get(m)
                .and_then(Option::as_ref)
                .map_or(0, TimeSeries::len);
            let mut estate = shards[0].region_raw[m].take();
            if let Some(series) = &mut estate {
                let others: Vec<&TimeSeries> = shards[1..]
                    .iter()
                    .filter_map(|sh| sh.region_raw[m].as_ref())
                    .collect();
                debug_assert_eq!(
                    others.len(),
                    shards.len() - 1,
                    "every shard replays the shared periodic schedule"
                );
                series.sum_suffix(prefix, &others);
            } else {
                debug_assert!(
                    shards[1..].iter().all(|sh| sh.region_raw[m].is_none()),
                    "every shard replays the shared periodic schedule"
                );
            }
            merged.region_raw[m] = estate;
            merged.region_rolled[m] = shards[0].region_rolled[m].take();
        }
        merged.dyn_raw = std::mem::take(&mut shards[0].dyn_raw);
        merged.dyn_rolled = std::mem::take(&mut shards[0].dyn_rolled);
        merged
    }

    /// Number of raw series.
    pub fn raw_series_count(&self) -> usize {
        self.node_raw.iter().flatten().count()
            + self.bb_raw.iter().flatten().count()
            + self.region_raw.iter().flatten().count()
            + self.dyn_raw.len()
    }

    /// Number of rolled series.
    pub fn rolled_series_count(&self) -> usize {
        self.node_rolled.iter().flatten().count()
            + self.bb_rolled.iter().flatten().count()
            + self.region_rolled.iter().flatten().count()
            + self.dyn_rolled.len()
    }

    /// Total raw samples across all series.
    pub fn raw_sample_count(&self) -> usize {
        self.node_raw
            .iter()
            .chain(&self.bb_raw)
            .chain(&self.region_raw)
            .flatten()
            .map(TimeSeries::len)
            .sum::<usize>()
            + self.dyn_raw.values().map(TimeSeries::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_query_raw() {
        let mut db = TsdbStore::new(30);
        let e = EntityRef::Node(0);
        db.record(MetricId::HostCpuUtilPct, e, t(0), 50.0);
        db.record(MetricId::HostCpuUtilPct, e, t(300), 60.0);
        let s = db.series(MetricId::HostCpuUtilPct, e).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), Some(55.0));
        assert!(db.series(MetricId::HostMemUsagePct, e).is_none());
    }

    #[test]
    fn rolled_recording_aggregates_by_day() {
        let mut db = TsdbStore::new(2);
        let e = EntityRef::Node(1);
        db.record_rolled(MetricId::HostMemUsagePct, e, t(100), 10.0);
        db.record_rolled(MetricId::HostMemUsagePct, e, t(200), 30.0);
        db.record_rolled(
            MetricId::HostMemUsagePct,
            e,
            SimTime::from_days(1) + sapsim_sim::SimDuration::from_secs(5),
            50.0,
        );
        let r = db.rollup(MetricId::HostMemUsagePct, e).unwrap();
        assert_eq!(r.daily_means(), vec![Some(20.0), Some(50.0)]);
    }

    #[test]
    fn series_of_is_sorted_and_filtered() {
        let mut db = TsdbStore::new(30);
        for i in [5u32, 1, 3] {
            db.record(MetricId::HostCpuReadyMs, EntityRef::Node(i), t(0), i as f64);
        }
        db.record(MetricId::HostMemUsagePct, EntityRef::Node(9), t(0), 1.0);
        let got: Vec<_> = db
            .series_of(MetricId::HostCpuReadyMs)
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(
            got,
            vec![EntityRef::Node(1), EntityRef::Node(3), EntityRef::Node(5)]
        );
    }

    #[test]
    fn raw_and_rolled_views_are_independent() {
        let mut db = TsdbStore::new(30);
        let e = EntityRef::Vm(7);
        db.record(MetricId::VmCpuUsageRatio, e, t(0), 0.5);
        assert!(db.rollup(MetricId::VmCpuUsageRatio, e).is_none());
        db.record_rolled(MetricId::VmCpuUsageRatio, e, t(0), 0.5);
        assert_eq!(db.raw_series_count(), 1);
        assert_eq!(db.rolled_series_count(), 1);
        assert_eq!(db.raw_sample_count(), 1);
    }

    #[test]
    fn counts() {
        let mut db = TsdbStore::new(30);
        for i in 0..10u32 {
            for s in 0..5u64 {
                db.record(
                    MetricId::HostCpuUtilPct,
                    EntityRef::Node(i),
                    t(s * 300),
                    0.0,
                );
            }
        }
        assert_eq!(db.raw_series_count(), 10);
        assert_eq!(db.raw_sample_count(), 50);
    }

    /// Replay the same recording script against a dynamic store and a
    /// dense (`with_topology`) store and require identical observable
    /// behavior from every query API.
    #[test]
    fn dense_and_dynamic_stores_are_observably_identical() {
        let mut dynamic = TsdbStore::new(3);
        let mut dense = TsdbStore::with_topology(3, 4, 2);
        let script: Vec<(MetricId, EntityRef, u64, f64)> = vec![
            (MetricId::HostCpuUtilPct, EntityRef::Node(0), 0, 10.0),
            (MetricId::HostCpuUtilPct, EntityRef::Node(3), 0, 20.0),
            (MetricId::HostCpuUtilPct, EntityRef::Node(7), 0, 30.0), // out of dense range
            (MetricId::OsVcpusUsed, EntityRef::Bb(1), 30, 64.0),
            (MetricId::OsInstancesTotal, EntityRef::Region, 30, 2.0),
            (MetricId::VmCpuUsageRatio, EntityRef::Vm(42), 300, 0.5),
            (MetricId::HostCpuUtilPct, EntityRef::Node(0), 300, 12.0),
        ];
        for &(m, e, s, v) in &script {
            dynamic.record(m, e, t(s), v);
            dense.record(m, e, t(s), v);
            dynamic.record_rolled(m, e, t(s), v);
            dense.record_rolled(m, e, t(s), v);
        }
        assert_eq!(dynamic.raw_series_count(), dense.raw_series_count());
        assert_eq!(dynamic.rolled_series_count(), dense.rolled_series_count());
        assert_eq!(dynamic.raw_sample_count(), dense.raw_sample_count());
        for m in MetricId::ALL {
            let a: Vec<_> = dynamic
                .series_of(m)
                .into_iter()
                .map(|(e, s)| (e, s.clone()))
                .collect();
            let b: Vec<_> = dense
                .series_of(m)
                .into_iter()
                .map(|(e, s)| (e, s.clone()))
                .collect();
            assert_eq!(a, b, "{m}");
            let ra: Vec<_> = dynamic
                .rollups_of(m)
                .into_iter()
                .map(|(e, r)| (e, r.clone()))
                .collect();
            let rb: Vec<_> = dense
                .rollups_of(m)
                .into_iter()
                .map(|(e, r)| (e, r.clone()))
                .collect();
            assert_eq!(ra, rb, "{m}");
        }
        for &(m, e, _, _) in &script {
            assert_eq!(dynamic.series(m, e), dense.series(m, e), "{m} {e}");
        }
    }

    #[test]
    fn out_of_range_entities_fall_back_to_dynamic() {
        let mut db = TsdbStore::with_topology(30, 2, 1);
        db.record(MetricId::HostCpuUtilPct, EntityRef::Node(1), t(0), 1.0);
        db.record(MetricId::HostCpuUtilPct, EntityRef::Node(2), t(0), 2.0);
        db.record(MetricId::HostCpuUtilPct, EntityRef::Node(1000), t(0), 3.0);
        assert_eq!(db.raw_series_count(), 3);
        let got: Vec<_> = db
            .series_of(MetricId::HostCpuUtilPct)
            .into_iter()
            .map(|(e, s)| (e, s.values()[0]))
            .collect();
        assert_eq!(
            got,
            vec![
                (EntityRef::Node(1), 1.0),
                (EntityRef::Node(2), 2.0),
                (EntityRef::Node(1000), 3.0),
            ]
        );
    }

    /// Replay a recording script globally and shard-wise and require the
    /// merged shard stores to serialize byte-identically to the global
    /// store — the unit-level statement of the sharded determinism
    /// contract.
    #[test]
    fn region_partition_merge_matches_global_recording() {
        // Four nodes and two BBs split across two shards; one sample
        // recorded globally before the partition.
        let node_owner = [0u32, 0, 1, 1];
        let bb_owner = [0u32, 1];
        let mut base = TsdbStore::with_topology(3, 4, 2);
        base.record(MetricId::OsInstancesTotal, EntityRef::Region, t(0), 9.0);

        // The sequential oracle keeps recording globally.
        let mut global = base.clone();
        // Each shard continues from a clone of the base store.
        let mut shards = vec![base.clone(), base.clone()];

        for step in 0..3u64 {
            let tick = t(300 * (step + 1));
            let mut estate_total = 0.0;
            for (shard_idx, shard) in shards.iter_mut().enumerate() {
                let local = (shard_idx as u64 + 2 * step) as f64;
                for n in 0..4u32 {
                    if node_owner[n as usize] == shard_idx as u32 {
                        let v = local + n as f64;
                        shard.record(MetricId::HostCpuUtilPct, EntityRef::Node(n), tick, v);
                        shard.record_rolled(
                            MetricId::HostCpuReadyMs,
                            EntityRef::Node(n),
                            tick,
                            v,
                        );
                        global.record(MetricId::HostCpuUtilPct, EntityRef::Node(n), tick, v);
                        global.record_rolled(
                            MetricId::HostCpuReadyMs,
                            EntityRef::Node(n),
                            tick,
                            v,
                        );
                    }
                }
                let bb = shard_idx as u32;
                shard.record_rolled(MetricId::OsVcpus, EntityRef::Bb(bb), tick, local);
                global.record_rolled(MetricId::OsVcpus, EntityRef::Bb(bb), tick, local);
                shard.record(MetricId::OsInstancesTotal, EntityRef::Region, tick, local);
                estate_total += local;
            }
            global.record(MetricId::OsInstancesTotal, EntityRef::Region, tick, estate_total);
        }

        let merged = TsdbStore::merge_region_partitions(&base, shards, &node_owner, &bb_owner);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&global).unwrap(),
            "merged shard stores must be byte-identical to global recording"
        );
    }

    #[test]
    fn dense_store_serde_roundtrips() {
        let mut db = TsdbStore::with_topology(2, 2, 1);
        db.record(MetricId::HostCpuUtilPct, EntityRef::Node(0), t(0), 1.0);
        db.record_rolled(MetricId::OsInstancesTotal, EntityRef::Region, t(30), 5.0);
        db.record(MetricId::VmCpuUsageRatio, EntityRef::Vm(9), t(0), 0.25);
        let json = serde_json::to_string(&db).unwrap();
        let back: TsdbStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rollup_days(), 2);
        assert_eq!(back.raw_series_count(), db.raw_series_count());
        assert_eq!(
            back.series(MetricId::VmCpuUsageRatio, EntityRef::Vm(9))
                .unwrap()
                .values(),
            &[0.25]
        );
        assert_eq!(
            back.rollup(MetricId::OsInstancesTotal, EntityRef::Region)
                .unwrap()
                .daily_means(),
            vec![None, Some(5.0)]
        );
        // Serialization is deterministic: same store, same bytes.
        assert_eq!(json, serde_json::to_string(&db).unwrap());
    }
}
