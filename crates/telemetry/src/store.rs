//! The in-memory time-series database.

use crate::metric::{EntityRef, MetricId};
use crate::rollup::DailyRollup;
use crate::series::TimeSeries;
use sapsim_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The identity of one series: `(metric, entity)` — equivalent to a
/// Prometheus metric name plus its label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Which metric.
    pub metric: MetricId,
    /// Which entity it is recorded against.
    pub entity: EntityRef,
}

impl SeriesKey {
    /// Construct a key.
    pub fn new(metric: MetricId, entity: EntityRef) -> Self {
        SeriesKey { metric, entity }
    }
}

/// An in-memory TSDB holding raw series and/or daily rollups.
///
/// Two storage modes per series, chosen by the recording side:
///
/// * [`record`](TsdbStore::record) keeps every raw sample — needed for
///   interval-resolution analyses (Figure 8's ready-time spikes, Figure 9's
///   contention percentiles).
/// * [`record_rolled`](TsdbStore::record_rolled) streams into a per-day
///   aggregate — sufficient for the daily-average heatmaps and far smaller.
///
/// Both may be used for the same key; they are independent views.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TsdbStore {
    raw: HashMap<SeriesKey, TimeSeries>,
    rolled: HashMap<SeriesKey, DailyRollup>,
    rollup_days: usize,
}

impl TsdbStore {
    /// A store whose rollups cover `rollup_days` days (the paper's
    /// observation window is 30).
    pub fn new(rollup_days: usize) -> Self {
        TsdbStore {
            raw: HashMap::new(),
            rolled: HashMap::new(),
            rollup_days,
        }
    }

    /// The configured rollup window.
    pub fn rollup_days(&self) -> usize {
        self.rollup_days
    }

    /// Append a raw sample.
    pub fn record(&mut self, metric: MetricId, entity: EntityRef, time: SimTime, value: f64) {
        self.raw
            .entry(SeriesKey::new(metric, entity))
            .or_default()
            .push(time, value);
    }

    /// Stream a sample into the daily rollup.
    pub fn record_rolled(
        &mut self,
        metric: MetricId,
        entity: EntityRef,
        time: SimTime,
        value: f64,
    ) {
        let days = self.rollup_days;
        self.rolled
            .entry(SeriesKey::new(metric, entity))
            .or_insert_with(|| DailyRollup::new(days))
            .push(time, value);
    }

    /// Raw series for a key, if any samples were recorded.
    pub fn series(&self, metric: MetricId, entity: EntityRef) -> Option<&TimeSeries> {
        self.raw.get(&SeriesKey::new(metric, entity))
    }

    /// Daily rollup for a key, if any samples were streamed.
    pub fn rollup(&self, metric: MetricId, entity: EntityRef) -> Option<&DailyRollup> {
        self.rolled.get(&SeriesKey::new(metric, entity))
    }

    /// All raw series of one metric, in deterministic (key-sorted) order.
    pub fn series_of(&self, metric: MetricId) -> Vec<(EntityRef, &TimeSeries)> {
        let mut v: Vec<_> = self
            .raw
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .map(|(k, s)| (k.entity, s))
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// All rollups of one metric, in deterministic (key-sorted) order.
    pub fn rollups_of(&self, metric: MetricId) -> Vec<(EntityRef, &DailyRollup)> {
        let mut v: Vec<_> = self
            .rolled
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .map(|(k, s)| (k.entity, s))
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// Number of raw series.
    pub fn raw_series_count(&self) -> usize {
        self.raw.len()
    }

    /// Number of rolled series.
    pub fn rolled_series_count(&self) -> usize {
        self.rolled.len()
    }

    /// Total raw samples across all series.
    pub fn raw_sample_count(&self) -> usize {
        self.raw.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_query_raw() {
        let mut db = TsdbStore::new(30);
        let e = EntityRef::Node(0);
        db.record(MetricId::HostCpuUtilPct, e, t(0), 50.0);
        db.record(MetricId::HostCpuUtilPct, e, t(300), 60.0);
        let s = db.series(MetricId::HostCpuUtilPct, e).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), Some(55.0));
        assert!(db.series(MetricId::HostMemUsagePct, e).is_none());
    }

    #[test]
    fn rolled_recording_aggregates_by_day() {
        let mut db = TsdbStore::new(2);
        let e = EntityRef::Node(1);
        db.record_rolled(MetricId::HostMemUsagePct, e, t(100), 10.0);
        db.record_rolled(MetricId::HostMemUsagePct, e, t(200), 30.0);
        db.record_rolled(
            MetricId::HostMemUsagePct,
            e,
            SimTime::from_days(1) + sapsim_sim::SimDuration::from_secs(5),
            50.0,
        );
        let r = db.rollup(MetricId::HostMemUsagePct, e).unwrap();
        assert_eq!(r.daily_means(), vec![Some(20.0), Some(50.0)]);
    }

    #[test]
    fn series_of_is_sorted_and_filtered() {
        let mut db = TsdbStore::new(30);
        for i in [5u32, 1, 3] {
            db.record(MetricId::HostCpuReadyMs, EntityRef::Node(i), t(0), i as f64);
        }
        db.record(MetricId::HostMemUsagePct, EntityRef::Node(9), t(0), 1.0);
        let got: Vec<_> = db
            .series_of(MetricId::HostCpuReadyMs)
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(
            got,
            vec![EntityRef::Node(1), EntityRef::Node(3), EntityRef::Node(5)]
        );
    }

    #[test]
    fn raw_and_rolled_views_are_independent() {
        let mut db = TsdbStore::new(30);
        let e = EntityRef::Vm(7);
        db.record(MetricId::VmCpuUsageRatio, e, t(0), 0.5);
        assert!(db.rollup(MetricId::VmCpuUsageRatio, e).is_none());
        db.record_rolled(MetricId::VmCpuUsageRatio, e, t(0), 0.5);
        assert_eq!(db.raw_series_count(), 1);
        assert_eq!(db.rolled_series_count(), 1);
        assert_eq!(db.raw_sample_count(), 1);
    }

    #[test]
    fn counts() {
        let mut db = TsdbStore::new(30);
        for i in 0..10u32 {
            for s in 0..5u64 {
                db.record(
                    MetricId::HostCpuUtilPct,
                    EntityRef::Node(i),
                    t(s * 300),
                    0.0,
                );
            }
        }
        assert_eq!(db.raw_series_count(), 10);
        assert_eq!(db.raw_sample_count(), 50);
    }
}
