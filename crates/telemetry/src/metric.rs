//! The metric catalog: every metric of the paper's Table 4, plus the
//! entities they are recorded against.

use sapsim_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which resource a metric describes (Table 4 "Resource" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// CPU utilization / contention / ready time.
    Cpu,
    /// Memory usage.
    Memory,
    /// Network throughput.
    Network,
    /// Local storage usage.
    Storage,
    /// Inventory counters (instance totals).
    Inventory,
}

/// Which level of the infrastructure a metric is recorded against
/// (Table 4 "Subsystem" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// Per compute node (the paper's Table 4 says "compute host"; its
    /// Section 5 terminology maps vROps host metrics to physical nodes).
    ComputeHost,
    /// Per virtual machine.
    Vm,
    /// Region-wide.
    Region,
}

/// The metrics collected in the paper (Table 4), by exporter:
///
/// * `vrops_*` — VMware vRealize Operations exporter, 300 s sampling.
/// * `openstack_compute_*` — Nova database via MySQL exporter, 30 s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricId {
    /// `vrops_hostsystem_cpu_core_utilization_percentage` — utilization of
    /// CPU per compute host (percent, 0–100).
    HostCpuUtilPct,
    /// `vrops_hostsystem_cpu_contention_percentage` — observed CPU
    /// contention per compute host (percent).
    HostCpuContentionPct,
    /// `vrops_hostsystem_cpu_ready_milliseconds` — duration a VM is ready
    /// but waits for scheduling, summed per host (ms per sampling window).
    HostCpuReadyMs,
    /// `vrops_hostsystem_memory_usage_percentage` — utilization of compute
    /// host memory (percent).
    HostMemUsagePct,
    /// `vrops_hostsystem_network_bytes_tx_kbps` — transmitted traffic (kbps).
    HostNetTxKbps,
    /// `vrops_hostsystem_network_bytes_rx_kbps` — received traffic (kbps).
    HostNetRxKbps,
    /// `vrops_hostsystem_diskspace_usage_gigabytes` — local storage used (GB).
    HostDiskUsageGb,
    /// `vrops_virtualmachine_cpu_usage_ratio` — percentage of requested and
    /// used CPU per VM (ratio 0–1 of the flavor's vCPUs).
    VmCpuUsageRatio,
    /// `vrops_virtualmachine_memory_consumed_ratio` — percentage of
    /// requested and used memory per VM (ratio 0–1).
    VmMemConsumedRatio,
    /// `openstack_compute_nodes_vcpus_gauge` — schedulable vCPUs per
    /// compute host.
    OsVcpus,
    /// `openstack_compute_nodes_vcpus_used_gauge` — allocated vCPUs per
    /// compute host.
    OsVcpusUsed,
    /// `openstack_compute_nodes_memory_mb_gauge` — schedulable memory (MB).
    OsMemoryMb,
    /// `openstack_compute_nodes_memory_mb_used_gauge` — allocated memory (MB).
    OsMemoryMbUsed,
    /// `openstack_compute_instances_total` — total number of VMs within the
    /// regional deployment.
    OsInstancesTotal,
}

impl MetricId {
    /// Number of metrics in the catalog — the row count of Table 4 and the
    /// per-metric stride of dense storage tables.
    pub const COUNT: usize = MetricId::ALL.len();

    /// All metrics in Table 4 order.
    pub const ALL: [MetricId; 14] = [
        MetricId::HostCpuUtilPct,
        MetricId::HostCpuContentionPct,
        MetricId::HostCpuReadyMs,
        MetricId::HostMemUsagePct,
        MetricId::HostNetTxKbps,
        MetricId::HostNetRxKbps,
        MetricId::HostDiskUsageGb,
        MetricId::VmCpuUsageRatio,
        MetricId::VmMemConsumedRatio,
        MetricId::OsVcpus,
        MetricId::OsVcpusUsed,
        MetricId::OsMemoryMb,
        MetricId::OsMemoryMbUsed,
        MetricId::OsInstancesTotal,
    ];

    /// Dense table index of this metric: its position in [`MetricId::ALL`]
    /// (the enum is declared in Table 4 order, so the discriminant *is* the
    /// position — asserted by a unit test).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The exporter metric name as it appears in the dataset.
    pub const fn name(self) -> &'static str {
        match self {
            MetricId::HostCpuUtilPct => "vrops_hostsystem_cpu_core_utilization_percentage",
            MetricId::HostCpuContentionPct => "vrops_hostsystem_cpu_contention_percentage",
            MetricId::HostCpuReadyMs => "vrops_hostsystem_cpu_ready_milliseconds",
            MetricId::HostMemUsagePct => "vrops_hostsystem_memory_usage_percentage",
            MetricId::HostNetTxKbps => "vrops_hostsystem_network_bytes_tx_kbps",
            MetricId::HostNetRxKbps => "vrops_hostsystem_network_bytes_rx_kbps",
            MetricId::HostDiskUsageGb => "vrops_hostsystem_diskspace_usage_gigabytes",
            MetricId::VmCpuUsageRatio => "vrops_virtualmachine_cpu_usage_ratio",
            MetricId::VmMemConsumedRatio => "vrops_virtualmachine_memory_consumed_ratio",
            MetricId::OsVcpus => "openstack_compute_nodes_vcpus_gauge",
            MetricId::OsVcpusUsed => "openstack_compute_nodes_vcpus_used_gauge",
            MetricId::OsMemoryMb => "openstack_compute_nodes_memory_mb_gauge",
            MetricId::OsMemoryMbUsed => "openstack_compute_nodes_memory_mb_used_gauge",
            MetricId::OsInstancesTotal => "openstack_compute_instances_total",
        }
    }

    /// Parse a metric by its exporter name.
    pub fn from_name(name: &str) -> Option<MetricId> {
        MetricId::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Which resource the metric describes.
    pub const fn kind(self) -> MetricKind {
        match self {
            MetricId::HostCpuUtilPct
            | MetricId::HostCpuContentionPct
            | MetricId::HostCpuReadyMs
            | MetricId::VmCpuUsageRatio
            | MetricId::OsVcpus
            | MetricId::OsVcpusUsed => MetricKind::Cpu,
            MetricId::HostMemUsagePct
            | MetricId::VmMemConsumedRatio
            | MetricId::OsMemoryMb
            | MetricId::OsMemoryMbUsed => MetricKind::Memory,
            MetricId::HostNetTxKbps | MetricId::HostNetRxKbps => MetricKind::Network,
            MetricId::HostDiskUsageGb => MetricKind::Storage,
            MetricId::OsInstancesTotal => MetricKind::Inventory,
        }
    }

    /// Which infrastructure level the metric is recorded against.
    pub const fn subsystem(self) -> Subsystem {
        match self {
            MetricId::VmCpuUsageRatio | MetricId::VmMemConsumedRatio => Subsystem::Vm,
            MetricId::OsInstancesTotal => Subsystem::Region,
            _ => Subsystem::ComputeHost,
        }
    }

    /// Default sampling interval of the collecting exporter. vROps scrapes
    /// every 300 s; the Nova database exporter every 30 s (the paper's
    /// "granularities ranging from 30 to 300 seconds").
    pub const fn sampling_interval(self) -> SimDuration {
        if self.is_vrops() {
            SimDuration::from_secs(300)
        } else {
            SimDuration::from_secs(30)
        }
    }

    /// True for vROps-exported metrics (`vrops_` prefix).
    pub const fn is_vrops(self) -> bool {
        !matches!(
            self,
            MetricId::OsVcpus
                | MetricId::OsVcpusUsed
                | MetricId::OsMemoryMb
                | MetricId::OsMemoryMbUsed
                | MetricId::OsInstancesTotal
        )
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The entity a sample is recorded against.
///
/// Raw integer ids are used so this crate stays independent of the topology
/// and workload crates; `sapsim-core` converts its typed ids at the
/// recording boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityRef {
    /// A compute node, by topology arena index.
    Node(u32),
    /// A building block, by topology arena index.
    Bb(u32),
    /// A virtual machine, by VM uid.
    Vm(u64),
    /// The whole region.
    Region,
}

impl fmt::Display for EntityRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityRef::Node(i) => write!(f, "node-{i}"),
            EntityRef::Bb(i) => write!(f, "bb-{i}"),
            EntityRef::Vm(i) => write!(f, "vm-{i}"),
            EntityRef::Region => write!(f, "region"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_named_like_table4() {
        assert_eq!(MetricId::ALL.len(), 14);
        // Every vROps metric is prefixed vrops_, every Nova metric
        // openstack_compute_ — the paper's two exporter prefixes.
        for m in MetricId::ALL {
            if m.is_vrops() {
                assert!(m.name().starts_with("vrops_"), "{m}");
            } else {
                assert!(m.name().starts_with("openstack_compute_"), "{m}");
            }
        }
    }

    #[test]
    fn index_matches_position_in_all() {
        assert_eq!(MetricId::COUNT, MetricId::ALL.len());
        for (pos, m) in MetricId::ALL.iter().enumerate() {
            assert_eq!(m.index(), pos, "{m}");
            assert!(m.index() < MetricId::COUNT);
        }
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for m in MetricId::ALL {
            assert!(seen.insert(m.name()));
            assert_eq!(MetricId::from_name(m.name()), Some(m));
        }
        assert_eq!(MetricId::from_name("nonexistent_metric"), None);
    }

    #[test]
    fn sampling_intervals_span_30_to_300_seconds() {
        assert_eq!(
            MetricId::HostCpuContentionPct.sampling_interval().as_secs(),
            300
        );
        assert_eq!(MetricId::OsInstancesTotal.sampling_interval().as_secs(), 30);
    }

    #[test]
    fn subsystems_match_table4() {
        assert_eq!(MetricId::VmCpuUsageRatio.subsystem(), Subsystem::Vm);
        assert_eq!(MetricId::VmMemConsumedRatio.subsystem(), Subsystem::Vm);
        assert_eq!(MetricId::OsInstancesTotal.subsystem(), Subsystem::Region);
        assert_eq!(MetricId::HostCpuReadyMs.subsystem(), Subsystem::ComputeHost);
    }

    #[test]
    fn kinds_cover_all_resources() {
        use std::collections::HashSet;
        let kinds: HashSet<_> = MetricId::ALL.iter().map(|m| m.kind()).collect();
        assert!(kinds.contains(&MetricKind::Cpu));
        assert!(kinds.contains(&MetricKind::Memory));
        assert!(kinds.contains(&MetricKind::Network));
        assert!(kinds.contains(&MetricKind::Storage));
        assert!(kinds.contains(&MetricKind::Inventory));
    }

    #[test]
    fn entity_display() {
        assert_eq!(EntityRef::Node(3).to_string(), "node-3");
        assert_eq!(EntityRef::Vm(12).to_string(), "vm-12");
        assert_eq!(EntityRef::Region.to_string(), "region");
    }
}
