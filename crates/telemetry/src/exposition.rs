//! Prometheus text exposition.
//!
//! The paper's monitoring stack serves these metrics over Prometheus's
//! text-based exposition format (Section 4: vROps and MySQL exporters
//! scraped by Prometheus). This module renders a snapshot of the store's
//! most recent samples in that format, so a `sapsim` process can be
//! scraped by a real Prometheus — or its output diffed against a real
//! exporter's.
//!
//! Format reference: one `# HELP` and `# TYPE` line per metric family,
//! then one sample line per series:
//!
//! ```text
//! # HELP vrops_hostsystem_cpu_contention_percentage Observed CPU contention per compute host
//! # TYPE vrops_hostsystem_cpu_contention_percentage gauge
//! vrops_hostsystem_cpu_contention_percentage{entity="node-17"} 1.25 1722384000000
//! ```

use crate::metric::MetricId;
use crate::registry::metric_catalog;
use crate::store::TsdbStore;
use std::fmt::Write as _;

/// Render the latest sample of every raw series as a Prometheus text
/// exposition page. Series are grouped by metric family in Table 4 order;
/// timestamps are the samples' simulation-time milliseconds.
pub fn render_exposition(store: &TsdbStore) -> String {
    let mut out = String::new();
    for info in metric_catalog() {
        let series = store.series_of(info.id);
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# HELP {} {}", info.name, info.description);
        let _ = writeln!(out, "# TYPE {} gauge", info.name);
        for (entity, s) in series {
            if let Some((t, v)) = s.last() {
                let _ = writeln!(
                    out,
                    "{}{{entity=\"{}\"}} {} {}",
                    info.name,
                    entity,
                    format_value(v),
                    t.as_millis()
                );
            }
        }
    }
    out
}

/// Prometheus float formatting: integers without a trailing `.0`,
/// non-finite values in Prometheus's spelling.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One metric family for [`render_metrics`]: a raw name (the renderer
/// prefixes `sapsim_` and sanitizes to the metric charset), a help
/// string, and the samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily<'a> {
    /// Raw family name (e.g. a recorder counter name).
    pub name: &'a str,
    /// `# HELP` text.
    pub help: &'a str,
    /// The samples, by kind.
    pub data: PromData<'a>,
}

/// The samples of one [`PromFamily`], one entry per label pair (or one
/// unlabeled entry).
#[derive(Debug, Clone, PartialEq)]
pub enum PromData<'a> {
    /// Monotone counter samples.
    Counter(Vec<(Option<(&'a str, &'a str)>, u64)>),
    /// Gauge samples.
    Gauge(Vec<(Option<(&'a str, &'a str)>, f64)>),
    /// Histogram samples, each rendered as the standard
    /// `_bucket`/`_sum`/`_count` series triple.
    Histogram(Vec<(Option<(&'a str, &'a str)>, PromHistogram<'a>)>),
}

/// A histogram snapshot for the exposition renderer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromHistogram<'a> {
    /// `(upper_bound, cumulative_count)` pairs in ascending bound order.
    /// The renderer appends the mandatory `le="+Inf"` bucket itself
    /// (valued [`PromHistogram::count`]), so callers must not include it.
    pub cumulative: &'a [(f64, u64)],
    /// Sum of all observations.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

/// Render metric families — counters, gauges, and histograms, optionally
/// labeled — as a Prometheus text exposition page.
///
/// Family names are prefixed `sapsim_` and sanitized to the metric
/// charset (every character outside `[A-Za-z0-9_]` maps to `_`); label
/// values get the standard backslash escaping (`\\`, `\"`, `\n`).
/// Iteration order is preserved, so an ordered input (e.g. a registry's
/// name-sorted entries) renders a stable page.
pub fn render_metrics<'a, I>(families: I) -> String
where
    I: IntoIterator<Item = PromFamily<'a>>,
{
    let mut out = String::new();
    for family in families {
        let metric = sanitize_name(family.name);
        match family.data {
            PromData::Counter(samples) => {
                let _ = writeln!(out, "# HELP {metric} {}", family.help);
                let _ = writeln!(out, "# TYPE {metric} counter");
                for (label, value) in samples {
                    push_sample(&mut out, &metric, "", label, None, &value.to_string());
                }
            }
            PromData::Gauge(samples) => {
                let _ = writeln!(out, "# HELP {metric} {}", family.help);
                let _ = writeln!(out, "# TYPE {metric} gauge");
                for (label, value) in samples {
                    push_sample(&mut out, &metric, "", label, None, &format_value(value));
                }
            }
            PromData::Histogram(samples) => {
                let _ = writeln!(out, "# HELP {metric} {}", family.help);
                let _ = writeln!(out, "# TYPE {metric} histogram");
                for (label, h) in samples {
                    for &(le, cum) in h.cumulative {
                        push_sample(
                            &mut out,
                            &metric,
                            "_bucket",
                            label,
                            Some(format_value(le)),
                            &cum.to_string(),
                        );
                    }
                    push_sample(
                        &mut out,
                        &metric,
                        "_bucket",
                        label,
                        Some("+Inf".to_string()),
                        &h.count.to_string(),
                    );
                    push_sample(&mut out, &metric, "_sum", label, None, &format_value(h.sum));
                    push_sample(&mut out, &metric, "_count", label, None, &h.count.to_string());
                }
            }
        }
    }
    out
}

/// Render observability recorder counters (placements, retries,
/// migrations, rejections-by-reason, …) as Prometheus counter families.
///
/// Each `(name, value)` pair becomes one single-sample family named
/// `sapsim_<name>`. Thin wrapper over [`render_metrics`]; kept for the
/// established one-counter-per-family page shape.
pub fn render_counters<'a, I>(counters: I) -> String
where
    I: IntoIterator<Item = (&'a str, u64)>,
{
    let mut out = String::new();
    for (name, value) in counters {
        out.push_str(&render_metrics([PromFamily {
            name,
            help: "Simulator event counter",
            data: PromData::Counter(vec![(None, value)]),
        }]));
    }
    out
}

/// `sapsim_`-prefixed, charset-sanitized family name.
fn sanitize_name(name: &str) -> String {
    let mut metric = String::with_capacity("sapsim_".len() + name.len());
    metric.push_str("sapsim_");
    for c in name.chars() {
        metric.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    metric
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed get backslash escapes.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One sample line: `metric[suffix]{label,le} value`. The user label (if
/// any) renders first, then the `le` bucket bound (if any).
fn push_sample(
    out: &mut String,
    metric: &str,
    suffix: &str,
    label: Option<(&str, &str)>,
    le: Option<String>,
    value: &str,
) {
    out.push_str(metric);
    out.push_str(suffix);
    if label.is_some() || le.is_some() {
        out.push('{');
        let mut first = true;
        if let Some((k, v)) = label {
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
            first = false;
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "le=\"{le}\"");
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Render only one metric family (for targeted scrape endpoints).
pub fn render_family(store: &TsdbStore, metric: MetricId) -> String {
    let mut out = String::new();
    let series = store.series_of(metric);
    if series.is_empty() {
        return out;
    }
    let info = metric_catalog()
        .into_iter()
        .find(|i| i.id == metric)
        .expect("catalog covers every metric");
    let _ = writeln!(out, "# HELP {} {}", info.name, info.description);
    let _ = writeln!(out, "# TYPE {} gauge", info.name);
    for (entity, s) in series {
        if let Some((t, v)) = s.last() {
            let _ = writeln!(
                out,
                "{}{{entity=\"{}\"}} {} {}",
                info.name,
                entity,
                format_value(v),
                t.as_millis()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EntityRef;
    use sapsim_sim::SimTime;

    fn store_fixture() -> TsdbStore {
        let mut db = TsdbStore::new(30);
        db.record(
            MetricId::HostCpuContentionPct,
            EntityRef::Node(17),
            SimTime::from_secs(300),
            1.25,
        );
        db.record(
            MetricId::HostCpuContentionPct,
            EntityRef::Node(17),
            SimTime::from_secs(600),
            2.5,
        );
        db.record(
            MetricId::OsInstancesTotal,
            EntityRef::Region,
            SimTime::from_secs(30),
            42.0,
        );
        db
    }

    #[test]
    fn exposition_has_help_type_and_latest_samples() {
        let page = render_exposition(&store_fixture());
        assert!(page.contains(
            "# HELP vrops_hostsystem_cpu_contention_percentage Observed CPU contention per compute host"
        ));
        assert!(page.contains("# TYPE vrops_hostsystem_cpu_contention_percentage gauge"));
        // Latest sample only, with millisecond timestamp.
        assert!(page.contains(
            "vrops_hostsystem_cpu_contention_percentage{entity=\"node-17\"} 2.5 600000"
        ));
        assert!(!page.contains("1.25"), "older samples are not exposed");
        assert!(page.contains("openstack_compute_instances_total{entity=\"region\"} 42 30000"));
    }

    #[test]
    fn families_appear_in_table4_order() {
        let page = render_exposition(&store_fixture());
        let contention = page
            .find("vrops_hostsystem_cpu_contention_percentage")
            .unwrap();
        let instances = page.find("openstack_compute_instances_total").unwrap();
        assert!(contention < instances);
    }

    #[test]
    fn single_family_render() {
        let db = store_fixture();
        let page = render_family(&db, MetricId::HostCpuContentionPct);
        assert_eq!(page.lines().count(), 3, "HELP + TYPE + one series");
        let empty = render_family(&db, MetricId::HostMemUsagePct);
        assert!(empty.is_empty());
    }

    #[test]
    fn value_formatting_matches_prometheus() {
        assert_eq!(format_value(42.0), "42");
        assert_eq!(format_value(1.25), "1.25");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(-7.0), "-7");
    }

    #[test]
    fn empty_store_renders_empty_page() {
        assert!(render_exposition(&TsdbStore::new(30)).is_empty());
    }

    #[test]
    fn counters_render_as_prometheus_counter_families() {
        let page = render_counters([("placements", 812u64), ("drs_migrations", 40)]);
        assert!(page.contains("# HELP sapsim_placements Simulator event counter\n"));
        assert!(page.contains("# TYPE sapsim_placements counter\n"));
        assert!(page.contains("\nsapsim_placements 812\n"));
        assert!(page.contains("sapsim_drs_migrations 40\n"));
        // Input order is preserved.
        assert!(page.find("sapsim_placements").unwrap() < page.find("sapsim_drs_migrations").unwrap());
    }

    #[test]
    fn counter_names_are_sanitized_to_the_metric_charset() {
        let page = render_counters([("scrape.sample-time", 1u64)]);
        assert!(page.contains("sapsim_scrape_sample_time 1\n"));
    }

    #[test]
    fn no_counters_render_empty() {
        assert!(render_counters(std::iter::empty::<(&str, u64)>()).is_empty());
    }

    #[test]
    fn gauges_render_with_labels() {
        let page = render_metrics([PromFamily {
            name: "wheel_occupied_buckets",
            help: "Occupied buckets per wheel level",
            data: PromData::Gauge(vec![
                (Some(("level", "0")), 3.0),
                (Some(("level", "1")), 1.5),
            ]),
        }]);
        assert!(page.contains("# TYPE sapsim_wheel_occupied_buckets gauge\n"));
        assert!(page.contains("sapsim_wheel_occupied_buckets{level=\"0\"} 3\n"));
        assert!(page.contains("sapsim_wheel_occupied_buckets{level=\"1\"} 1.5\n"));
    }

    #[test]
    fn histograms_render_bucket_sum_count() {
        let page = render_metrics([PromFamily {
            name: "span_us",
            help: "Span durations",
            data: PromData::Histogram(vec![(
                Some(("phase", "scrape")),
                PromHistogram {
                    cumulative: &[(3.0, 2), (7.0, 5)],
                    sum: 19.0,
                    count: 6,
                },
            )]),
        }]);
        assert!(page.contains("# TYPE sapsim_span_us histogram\n"));
        assert!(page.contains("sapsim_span_us_bucket{phase=\"scrape\",le=\"3\"} 2\n"));
        assert!(page.contains("sapsim_span_us_bucket{phase=\"scrape\",le=\"7\"} 5\n"));
        assert!(page.contains("sapsim_span_us_bucket{phase=\"scrape\",le=\"+Inf\"} 6\n"));
        assert!(page.contains("sapsim_span_us_sum{phase=\"scrape\"} 19\n"));
        assert!(page.contains("sapsim_span_us_count{phase=\"scrape\"} 6\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let page = render_metrics([PromFamily {
            name: "g",
            help: "h",
            data: PromData::Gauge(vec![(Some(("k", "a\"b\\c\nd")), 1.0)]),
        }]);
        assert!(page.contains("sapsim_g{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn wrapper_output_is_unchanged() {
        // The thin wrapper must keep the historical page byte-for-byte.
        let page = render_counters([("placements", 812u64)]);
        assert_eq!(
            page,
            "# HELP sapsim_placements Simulator event counter\n\
             # TYPE sapsim_placements counter\n\
             sapsim_placements 812\n"
        );
    }
}
