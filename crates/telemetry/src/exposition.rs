//! Prometheus text exposition.
//!
//! The paper's monitoring stack serves these metrics over Prometheus's
//! text-based exposition format (Section 4: vROps and MySQL exporters
//! scraped by Prometheus). This module renders a snapshot of the store's
//! most recent samples in that format, so a `sapsim` process can be
//! scraped by a real Prometheus — or its output diffed against a real
//! exporter's.
//!
//! Format reference: one `# HELP` and `# TYPE` line per metric family,
//! then one sample line per series:
//!
//! ```text
//! # HELP vrops_hostsystem_cpu_contention_percentage Observed CPU contention per compute host
//! # TYPE vrops_hostsystem_cpu_contention_percentage gauge
//! vrops_hostsystem_cpu_contention_percentage{entity="node-17"} 1.25 1722384000000
//! ```

use crate::metric::MetricId;
use crate::registry::metric_catalog;
use crate::store::TsdbStore;
use std::fmt::Write as _;

/// Render the latest sample of every raw series as a Prometheus text
/// exposition page. Series are grouped by metric family in Table 4 order;
/// timestamps are the samples' simulation-time milliseconds.
pub fn render_exposition(store: &TsdbStore) -> String {
    let mut out = String::new();
    for info in metric_catalog() {
        let series = store.series_of(info.id);
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# HELP {} {}", info.name, info.description);
        let _ = writeln!(out, "# TYPE {} gauge", info.name);
        for (entity, s) in series {
            if let Some((t, v)) = s.last() {
                let _ = writeln!(
                    out,
                    "{}{{entity=\"{}\"}} {} {}",
                    info.name,
                    entity,
                    format_value(v),
                    t.as_millis()
                );
            }
        }
    }
    out
}

/// Prometheus float formatting: integers without a trailing `.0`,
/// non-finite values in Prometheus's spelling.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render observability recorder counters (placements, retries,
/// migrations, rejections-by-reason, …) as Prometheus counter families.
///
/// Each `(name, value)` pair becomes one single-sample family named
/// `sapsim_<name>` with the name sanitized to the Prometheus metric
/// charset (every character outside `[A-Za-z0-9_]` maps to `_`).
/// Iteration order is preserved, so an ordered input (e.g. a recorder's
/// name-sorted counters) renders a stable page.
pub fn render_counters<'a, I>(counters: I) -> String
where
    I: IntoIterator<Item = (&'a str, u64)>,
{
    let mut out = String::new();
    for (name, value) in counters {
        let mut metric = String::with_capacity("sapsim_".len() + name.len());
        metric.push_str("sapsim_");
        for c in name.chars() {
            metric.push(if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            });
        }
        let _ = writeln!(out, "# HELP {metric} Simulator event counter");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    out
}

/// Render only one metric family (for targeted scrape endpoints).
pub fn render_family(store: &TsdbStore, metric: MetricId) -> String {
    let mut out = String::new();
    let series = store.series_of(metric);
    if series.is_empty() {
        return out;
    }
    let info = metric_catalog()
        .into_iter()
        .find(|i| i.id == metric)
        .expect("catalog covers every metric");
    let _ = writeln!(out, "# HELP {} {}", info.name, info.description);
    let _ = writeln!(out, "# TYPE {} gauge", info.name);
    for (entity, s) in series {
        if let Some((t, v)) = s.last() {
            let _ = writeln!(
                out,
                "{}{{entity=\"{}\"}} {} {}",
                info.name,
                entity,
                format_value(v),
                t.as_millis()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::EntityRef;
    use sapsim_sim::SimTime;

    fn store_fixture() -> TsdbStore {
        let mut db = TsdbStore::new(30);
        db.record(
            MetricId::HostCpuContentionPct,
            EntityRef::Node(17),
            SimTime::from_secs(300),
            1.25,
        );
        db.record(
            MetricId::HostCpuContentionPct,
            EntityRef::Node(17),
            SimTime::from_secs(600),
            2.5,
        );
        db.record(
            MetricId::OsInstancesTotal,
            EntityRef::Region,
            SimTime::from_secs(30),
            42.0,
        );
        db
    }

    #[test]
    fn exposition_has_help_type_and_latest_samples() {
        let page = render_exposition(&store_fixture());
        assert!(page.contains(
            "# HELP vrops_hostsystem_cpu_contention_percentage Observed CPU contention per compute host"
        ));
        assert!(page.contains("# TYPE vrops_hostsystem_cpu_contention_percentage gauge"));
        // Latest sample only, with millisecond timestamp.
        assert!(page.contains(
            "vrops_hostsystem_cpu_contention_percentage{entity=\"node-17\"} 2.5 600000"
        ));
        assert!(!page.contains("1.25"), "older samples are not exposed");
        assert!(page.contains("openstack_compute_instances_total{entity=\"region\"} 42 30000"));
    }

    #[test]
    fn families_appear_in_table4_order() {
        let page = render_exposition(&store_fixture());
        let contention = page
            .find("vrops_hostsystem_cpu_contention_percentage")
            .unwrap();
        let instances = page.find("openstack_compute_instances_total").unwrap();
        assert!(contention < instances);
    }

    #[test]
    fn single_family_render() {
        let db = store_fixture();
        let page = render_family(&db, MetricId::HostCpuContentionPct);
        assert_eq!(page.lines().count(), 3, "HELP + TYPE + one series");
        let empty = render_family(&db, MetricId::HostMemUsagePct);
        assert!(empty.is_empty());
    }

    #[test]
    fn value_formatting_matches_prometheus() {
        assert_eq!(format_value(42.0), "42");
        assert_eq!(format_value(1.25), "1.25");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(-7.0), "-7");
    }

    #[test]
    fn empty_store_renders_empty_page() {
        assert!(render_exposition(&TsdbStore::new(30)).is_empty());
    }

    #[test]
    fn counters_render_as_prometheus_counter_families() {
        let page = render_counters([("placements", 812u64), ("drs_migrations", 40)]);
        assert!(page.contains("# HELP sapsim_placements Simulator event counter\n"));
        assert!(page.contains("# TYPE sapsim_placements counter\n"));
        assert!(page.contains("\nsapsim_placements 812\n"));
        assert!(page.contains("sapsim_drs_migrations 40\n"));
        // Input order is preserved.
        assert!(page.find("sapsim_placements").unwrap() < page.find("sapsim_drs_migrations").unwrap());
    }

    #[test]
    fn counter_names_are_sanitized_to_the_metric_charset() {
        let page = render_counters([("scrape.sample-time", 1u64)]);
        assert!(page.contains("sapsim_scrape_sample_time 1\n"));
    }

    #[test]
    fn no_counters_render_empty() {
        assert!(render_counters(std::iter::empty::<(&str, u64)>()).is_empty());
    }
}
