//! A single append-only time series.

use sapsim_sim::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only sequence of `(time, value)` samples with non-decreasing
/// timestamps — one exporter series in the dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `time` precedes the last recorded timestamp: exporters
    /// scrape forward in time, so out-of-order appends indicate a bug in
    /// the recording loop.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                time >= last,
                "out-of-order append: last={last}, new={time}"
            );
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Iterate over all samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Iterate over the samples with `start <= t < end`.
    pub fn range(
        &self,
        start: SimTime,
        end: SimTime,
    ) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        self.times[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Just the values, in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Element-wise sum a set of parallel series into this one beyond a
    /// shared prefix: `self.values[i] += Σ others.values[i]` for every
    /// `i >= prefix_len`, leaving the first `prefix_len` samples (and all
    /// timestamps) untouched.
    ///
    /// This is the estate-level merge of the sharded event loop: each
    /// shard appends its *local* contribution to an estate-wide gauge at
    /// the same replicated tick, so the true estate value at each tick is
    /// the sum across shards, while the samples before the partition
    /// instant (`prefix_len`) were recorded globally and must pass
    /// through unchanged.
    ///
    /// # Panics
    /// Debug-asserts that every series in `others` has the same length
    /// and the same timestamps as `self` — shards replay one shared
    /// periodic schedule, so a mismatch means the partition lost a tick.
    pub fn sum_suffix(&mut self, prefix_len: usize, others: &[&TimeSeries]) {
        for other in others {
            debug_assert_eq!(
                other.times, self.times,
                "sharded series must share the periodic tick schedule"
            );
            for (acc, v) in self.values[prefix_len..]
                .iter_mut()
                .zip(&other.values[prefix_len..])
            {
                *acc += v;
            }
        }
    }

    /// Mean of all values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Maximum value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Mean of the samples within `[start, end)`; `None` if the window is
    /// empty.
    pub fn mean_in(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, v) in self.range(start, end) {
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapsim_sim::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(30), 2.0);
        s.push(t(60), 3.0);
        assert_eq!(s.len(), 3);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(t(0), 1.0), (t(30), 2.0), (t(60), 3.0)]);
        assert_eq!(s.last(), Some((t(60), 3.0)));
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        // Two exporters may scrape at the same instant.
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(10), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn range_is_half_open() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i * 10), i as f64);
        }
        let v: Vec<_> = s.range(t(20), t(50)).map(|(_, v)| v).collect();
        assert_eq!(v, vec![2.0, 3.0, 4.0]);
        assert_eq!(s.range(t(200), t(300)).count(), 0);
    }

    #[test]
    fn sum_suffix_merges_beyond_the_shared_prefix() {
        let mut merged = TimeSeries::new();
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        // Shared (pre-partition) prefix: recorded globally, passes through.
        for s in [&mut merged, &mut a, &mut b] {
            s.push(t(0), 100.0);
        }
        // Post-partition ticks: each shard appends its local value.
        merged.push(t(30), 3.0);
        a.push(t(30), 5.0);
        b.push(t(30), 7.0);
        merged.push(t(60), 1.0);
        a.push(t(60), 2.0);
        b.push(t(60), 4.0);
        merged.sum_suffix(1, &[&a, &b]);
        let got: Vec<_> = merged.iter().collect();
        assert_eq!(got, vec![(t(0), 100.0), (t(30), 15.0), (t(60), 7.0)]);
    }

    #[test]
    fn mean_and_max() {
        let mut s = TimeSeries::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        s.push(t(0), 2.0);
        s.push(t(1), 4.0);
        s.push(t(2), 0.0);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn mean_in_window() {
        let mut s = TimeSeries::new();
        let day = SimDuration::from_days(1);
        for i in 0..48 {
            s.push(SimTime::ZERO + day * i / 24, (i % 24) as f64);
        }
        // First day: values 0..24.
        let m = s
            .mean_in(SimTime::ZERO, SimTime::ZERO + day)
            .unwrap();
        assert!((m - 11.5).abs() < 1e-9);
        assert_eq!(s.mean_in(t(999_999), t(1_000_000)), None);
    }
}
