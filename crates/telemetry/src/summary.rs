//! Summary statistics over sample collections: percentiles, means, CDFs.
//!
//! These are the primitives behind Figure 9 (daily mean / 95th percentile /
//! maximum contention across nodes) and Figure 14 (CDFs of per-VM
//! utilization).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Maximum; `None` for an empty slice. NaNs are ignored.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
}

/// Quantile with linear interpolation between closest ranks
/// (the "linear" / R-7 method used by NumPy's default and by PromQL's
/// `quantile()`), so `q = 0.5` of `[1, 2, 3, 4]` is `2.5`.
///
/// `q` is clamped to `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    Some(quantile_of_sorted(&sorted, q))
}

/// Quantile (R-7) of an already ascending-sorted, NaN-free slice.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical CDF: for each sorted sample, the cumulative fraction of
/// samples at or below it. Suitable for plotting Figure 14.
///
/// Returns `(value, fraction)` pairs with fractions in `(0, 1]`.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction of samples strictly below `threshold`. Returns 0.0 for an
/// empty slice.
pub fn fraction_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

/// Fraction of samples within `[lo, hi)`.
pub fn fraction_in(values: &[f64], lo: f64, hi: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v >= lo && v < hi).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(max(&[]), None);
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(max(&[f64::NAN, 2.0]), Some(2.0));
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        // p95 of 1..=100 under R-7: 1 + 0.95*99 = 95.05.
        let big: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((quantile(&big, 0.95).unwrap() - 95.05).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_order_insensitive() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&a, 0.25), quantile(&b, 0.25));
    }

    #[test]
    fn quantile_handles_singleton_and_empty() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
    }

    #[test]
    fn quantile_clamps_q() {
        let v = [1.0, 2.0];
        assert_eq!(quantile(&v, -1.0), Some(1.0));
        assert_eq!(quantile(&v, 2.0), Some(2.0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let v = [3.0, 1.0, 2.0, 2.0];
        let cdf = empirical_cdf(&v);
        assert_eq!(cdf.len(), 4);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf[0], (1.0, 0.25));
    }

    #[test]
    fn fractions() {
        let v = [0.1, 0.5, 0.7, 0.9];
        assert_eq!(fraction_below(&v, 0.7), 0.5);
        assert_eq!(fraction_in(&v, 0.5, 0.9), 0.5);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
        assert_eq!(fraction_in(&[], 0.0, 1.0), 0.0);
    }

    #[test]
    fn paper_classification_thresholds_partition() {
        // The paper classifies VMs as under (<0.70), optimal [0.70, 0.85),
        // over (>= 0.85). The three fractions must sum to 1.
        let v: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let under = fraction_below(&v, 0.70);
        let optimal = fraction_in(&v, 0.70, 0.85);
        let over = 1.0 - under - optimal;
        assert!((under - 0.70).abs() < 1e-9);
        assert!((optimal - 0.15).abs() < 1e-9);
        assert!((over - 0.15).abs() < 1e-9);
    }
}
