//! Human-readable metric catalog — regenerates the paper's Table 4.

use crate::metric::{MetricId, MetricKind, Subsystem};

/// Catalog entry describing one metric (a row of Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricInfo {
    /// The metric.
    pub id: MetricId,
    /// Exporter name.
    pub name: &'static str,
    /// Resource column.
    pub kind: MetricKind,
    /// Subsystem column.
    pub subsystem: Subsystem,
    /// Description column.
    pub description: &'static str,
}

/// The full catalog in Table 4 order.
pub fn metric_catalog() -> Vec<MetricInfo> {
    MetricId::ALL
        .iter()
        .map(|&id| MetricInfo {
            id,
            name: id.name(),
            kind: id.kind(),
            subsystem: id.subsystem(),
            description: description(id),
        })
        .collect()
}

fn description(id: MetricId) -> &'static str {
    match id {
        MetricId::HostCpuUtilPct => "Utilization of CPU per compute host",
        MetricId::HostCpuContentionPct => "Observed CPU contention per compute host",
        MetricId::HostCpuReadyMs => "Duration a VM is ready but waits for scheduling",
        MetricId::HostMemUsagePct => "Utilization of compute host memory",
        MetricId::HostNetTxKbps => "Transmitted network traffic",
        MetricId::HostNetRxKbps => "Received network traffic",
        MetricId::HostDiskUsageGb => "Utilization of local storage",
        MetricId::VmCpuUsageRatio => "Percentage of requested and used CPU",
        MetricId::VmMemConsumedRatio => "Percentage of requested and used memory",
        MetricId::OsVcpus => "Number of vCPUs per compute host",
        MetricId::OsVcpusUsed => "Number of vCPUs used per compute host",
        MetricId::OsMemoryMb => "Amount of memory in MB per compute host",
        MetricId::OsMemoryMbUsed => "Amount of utilized memory in MB per compute host",
        MetricId::OsInstancesTotal => "Total number of VMs within the regional deployment",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_metric() {
        let cat = metric_catalog();
        assert_eq!(cat.len(), MetricId::ALL.len());
        for info in &cat {
            assert!(!info.description.is_empty());
            assert_eq!(info.name, info.id.name());
        }
    }

    #[test]
    fn catalog_descriptions_are_unique() {
        let cat = metric_catalog();
        let set: std::collections::HashSet<_> = cat.iter().map(|i| i.description).collect();
        assert_eq!(set.len(), cat.len());
    }
}
