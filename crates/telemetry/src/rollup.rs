//! Streaming aggregation: running statistics and per-day rollups.
//!
//! The paper's heatmaps (Figures 5–7, 10–13) plot *daily averages* per node
//! over a 30-day window. Retaining every raw sample for a full region
//! (1,823 nodes × 7 host metrics × 8,640 samples/day) is wasteful when only
//! daily aggregates are consumed, so the recording loop can stream samples
//! into a [`DailyRollup`] instead, which keeps O(days) memory per series.

use sapsim_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Count/sum/min/max/sum-of-squares accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Sum of squared samples (for variance).
    pub sum_sq: f64,
    /// Minimum sample (meaningless when `count == 0`).
    pub min: f64,
    /// Maximum sample (meaningless when `count == 0`).
    pub max: f64,
}

impl RunningStat {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one sample in.
    pub fn push(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mean = self.sum / self.count as f64;
        Some((self.sum_sq / self.count as f64 - mean * mean).max(0.0))
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// Aggregates of one simulated day for one series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DayCell {
    /// Statistics over the day's samples.
    pub stat: RunningStat,
}

impl DayCell {
    /// Daily mean; `None` for days without data (the white cells of the
    /// paper's heatmaps).
    pub fn mean(&self) -> Option<f64> {
        self.stat.mean()
    }
}

/// Per-day aggregation of one series over a fixed observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyRollup {
    days: Vec<DayCell>,
}

impl DailyRollup {
    /// A rollup covering `days` simulated days (day 0 .. day `days-1`).
    pub fn new(days: usize) -> Self {
        DailyRollup {
            days: vec![DayCell::default(); days],
        }
    }

    /// Number of days covered.
    pub fn num_days(&self) -> usize {
        self.days.len()
    }

    /// Fold in a sample taken at `time`. Samples beyond the window are
    /// ignored (the observation ended).
    pub fn push(&mut self, time: SimTime, value: f64) {
        let day = time.day_index() as usize;
        if let Some(cell) = self.days.get_mut(day) {
            cell.stat.push(value);
        }
    }

    /// The aggregate cell for one day.
    pub fn day(&self, day: usize) -> Option<&DayCell> {
        self.days.get(day)
    }

    /// Daily means across the window; `None` entries are days without data.
    pub fn daily_means(&self) -> Vec<Option<f64>> {
        self.days.iter().map(|c| c.mean()).collect()
    }

    /// Mean over the whole window (all samples weighted equally).
    pub fn overall_mean(&self) -> Option<f64> {
        let mut total = RunningStat::new();
        for c in &self.days {
            total.merge(&c.stat);
        }
        total.mean()
    }

    /// Maximum sample over the whole window.
    pub fn overall_max(&self) -> Option<f64> {
        let mut max: Option<f64> = None;
        for c in self.days.iter().filter(|c| c.stat.count > 0) {
            max = Some(match max {
                None => c.stat.max,
                Some(m) => m.max(c.stat.max),
            });
        }
        max
    }

    /// Number of days that received at least one sample.
    pub fn days_with_data(&self) -> usize {
        self.days.iter().filter(|c| c.stat.count > 0).count()
    }

    /// Number of days with no samples at all — the white cells of the
    /// paper's heatmaps (maintenance windows, host failures, telemetry
    /// dropouts).
    pub fn gap_days(&self) -> usize {
        self.num_days() - self.days_with_data()
    }

    /// Fraction of days with data, in `[0, 1]`. An empty window (zero
    /// days) counts as fully covered.
    pub fn coverage(&self) -> f64 {
        if self.days.is_empty() {
            1.0
        } else {
            self.days_with_data() as f64 / self.num_days() as f64
        }
    }

    /// Length of the longest run of consecutive empty days — how long the
    /// series was dark at a stretch, which distinguishes a multi-day
    /// outage from scattered missing samples.
    pub fn longest_gap_days(&self) -> usize {
        let mut longest = 0usize;
        let mut run = 0usize;
        for c in &self.days {
            if c.stat.count == 0 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        longest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapsim_sim::SimDuration;

    #[test]
    fn running_stat_basics() {
        let mut s = RunningStat::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count, 8);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn running_stat_merge_equals_combined_push() {
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        let mut all = RunningStat::new();
        for i in 0..10 {
            let v = (i * i) as f64;
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert!((a.sum - all.sum).abs() < 1e-9);
        assert_eq!(a.min, all.min);
        assert_eq!(a.max, all.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStat::new();
        a.push(3.0);
        let before = a;
        a.merge(&RunningStat::new());
        assert_eq!(a, before);
        let mut e = RunningStat::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn rollup_buckets_by_day() {
        let mut r = DailyRollup::new(3);
        let h = SimDuration::from_hours(1);
        // Day 0: 1.0 and 3.0; day 1: 10.0; day 2: nothing.
        r.push(SimTime::ZERO + h, 1.0);
        r.push(SimTime::ZERO + h * 5, 3.0);
        r.push(SimTime::from_days(1) + h, 10.0);
        assert_eq!(r.daily_means(), vec![Some(2.0), Some(10.0), None]);
        assert_eq!(r.overall_mean(), Some(14.0 / 3.0));
        assert_eq!(r.overall_max(), Some(10.0));
    }

    #[test]
    fn rollup_ignores_out_of_window_samples() {
        let mut r = DailyRollup::new(2);
        r.push(SimTime::from_days(5), 100.0);
        assert_eq!(r.daily_means(), vec![None, None]);
        assert_eq!(r.overall_mean(), None);
        assert_eq!(r.overall_max(), None);
    }

    #[test]
    fn boundary_sample_lands_in_new_day() {
        let mut r = DailyRollup::new(2);
        r.push(SimTime::from_days(1), 7.0);
        assert_eq!(r.daily_means(), vec![None, Some(7.0)]);
    }

    #[test]
    fn gap_accounting_counts_empty_days() {
        let mut r = DailyRollup::new(5);
        // Data on days 0 and 3; days 1-2 and 4 are dark.
        r.push(SimTime::ZERO, 1.0);
        r.push(SimTime::from_days(3), 2.0);
        assert_eq!(r.days_with_data(), 2);
        assert_eq!(r.gap_days(), 3);
        assert!((r.coverage() - 0.4).abs() < 1e-12);
        assert_eq!(r.longest_gap_days(), 2, "days 1-2 are the longest run");
    }

    #[test]
    fn gap_accounting_edge_cases() {
        // Fully dark window.
        let dark = DailyRollup::new(3);
        assert_eq!(dark.days_with_data(), 0);
        assert_eq!(dark.gap_days(), 3);
        assert_eq!(dark.coverage(), 0.0);
        assert_eq!(dark.longest_gap_days(), 3);
        // Fully covered window.
        let mut full = DailyRollup::new(2);
        full.push(SimTime::ZERO, 1.0);
        full.push(SimTime::from_days(1), 1.0);
        assert_eq!(full.gap_days(), 0);
        assert_eq!(full.coverage(), 1.0);
        assert_eq!(full.longest_gap_days(), 0);
        // Zero-day window: vacuously covered, no division by zero.
        let empty = DailyRollup::new(0);
        assert_eq!(empty.coverage(), 1.0);
        assert_eq!(empty.longest_gap_days(), 0);
    }
}
