//! # sapsim-telemetry — the observability substrate
//!
//! The paper's dataset was produced by a Prometheus/Thanos monitoring stack
//! fed by two exporters: the vROps exporter (VMware vRealize Operations
//! metrics, prefix `vrops_`) and the MySQL server exporter reading the Nova
//! database (prefix `openstack_compute_`). Sampling intervals range from
//! 30 s to 300 s depending on the collector (paper Section 4).
//!
//! This crate reproduces that substrate in-process:
//!
//! * [`MetricId`] — the exact metric catalog of the paper's Table 4.
//! * [`TsdbStore`] — an append-only in-memory time-series database keyed by
//!   `(metric, entity)`.
//! * [`DailyRollup`] — streaming per-day aggregation (the unit of the
//!   paper's heatmaps, which plot *daily averages* per node), so that
//!   full-region runs don't need to retain every raw sample.
//! * [`summary`] — percentile/mean/max helpers used by the contention and
//!   ready-time analyses (Figures 8 and 9).
//! * [`exposition`] — Prometheus text-format rendering of the latest
//!   samples, matching how the paper's exporters serve these metrics, plus
//!   counter-family rendering for the observability recorder's event
//!   counters.
//!
//! The store is deliberately simple (sorted `Vec` per series, no
//! compression): runs are bounded (30 days) and the analysis layer consumes
//! everything sequentially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposition;
mod metric;
mod registry;
mod rollup;
mod series;
mod store;
pub mod summary;

pub use metric::{EntityRef, MetricId, MetricKind, Subsystem};
pub use registry::{metric_catalog, MetricInfo};
pub use rollup::{DailyRollup, DayCell, RunningStat};
pub use series::TimeSeries;
pub use store::{SeriesKey, TsdbStore};
