//! Observability overhead: the same one-day run with recording compiled
//! out (`run()` / `NullRecorder`), with the engine-health metrics
//! registry alone, with the recorder attached at full decision sampling,
//! and with decision sampling off (spans and counters only). The first
//! two bars are the PR's "zero-cost when disabled" claim; the
//! `metrics_recorder` bar pins the registry's budget (≤ 2% over
//! `null_recorder`); the gap between the last two isolates the decision
//! audit log's share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapsim_core::obs::{JsonlRecorder, MetricsRecorder, NullRecorder, ObsConfig};
use sapsim_core::{SimConfig, SimDriver};
use std::hint::black_box;

fn obs_overhead(c: &mut Criterion) {
    let base = SimConfig::builder()
        .scale(0.05)
        .days(1)
        .seed(7)
        .warmup_days(0)
        .build()
        .expect("valid bench config");
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("one_day", "disabled"), |b| {
        b.iter(|| black_box(SimDriver::new(base).expect("valid").run()))
    });

    g.bench_function(BenchmarkId::new("one_day", "null_recorder"), |b| {
        b.iter(|| {
            let mut rec = NullRecorder;
            black_box(SimDriver::new(base).expect("valid").run_with_recorder(&mut rec))
        })
    });

    g.bench_function(BenchmarkId::new("one_day", "metrics_recorder"), |b| {
        b.iter(|| {
            let mut rec = MetricsRecorder::new();
            let result = SimDriver::new(base).expect("valid").run_with_recorder(&mut rec);
            black_box((result, rec))
        })
    });

    for (label, rate) in [("jsonl_full_sampling", 1.0f64), ("jsonl_spans_only", 0.0)] {
        g.bench_with_input(BenchmarkId::new("one_day", label), &rate, |b, &rate| {
            b.iter(|| {
                let mut rec = JsonlRecorder::new(ObsConfig {
                    decision_sample_rate: rate,
                    ..ObsConfig::default()
                });
                let result = SimDriver::new(base).expect("valid").run_with_recorder(&mut rec);
                black_box((result, rec))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
