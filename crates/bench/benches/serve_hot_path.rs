//! Placement-service hot path at region scale.
//!
//! Boots the full paper region (scale 1.0 — 1,823 nodes) and measures
//! the request path `sapsim serve` runs per placement: envelope decode,
//! engine mutation, envelope encode. A custom `main` first prints a
//! latency distribution summary (p50 / p99 and placements/sec over a
//! fixed request train — the service's stated SLO numbers), then runs
//! the criterion groups for the individual stages:
//!
//! * `place_release` — one live placement (plus the release that keeps
//!   the estate at a steady size across iterations)
//! * `dry_run_plan`  — fork-and-place, the what-if read path
//! * `snapshot_fork` — the writer's post-mutation snapshot republish
//! * `codec`         — envelope parse + canonical re-encode only
//!
//! Run with `cargo bench --bench serve_hot_path`.

use criterion::{criterion_group, Criterion};
use sapsim_api::{ApiRequest, PlaceRequest};
use sapsim_cli::serve::service::Service;
use sapsim_core::{PlaceOutcome, PlaceSpec, PlacementEngine, SimConfig};
use sapsim_topology::Resources;
use sapsim_workload::WorkloadClass;
use std::hint::black_box;
use std::time::Instant;

/// The full studied region.
fn region_config() -> SimConfig {
    SimConfig::builder()
        .scale(1.0)
        .seed(0)
        .build()
        .expect("valid region config")
}

fn region_engine() -> PlacementEngine {
    PlacementEngine::new(region_config()).expect("region estate boots")
}

fn gp_spec() -> PlaceSpec {
    PlaceSpec {
        resources: Resources::new(4, 16_384, 64),
        class: WorkloadClass::GeneralPurpose,
        az: None,
        lifetime_days: 30.0,
    }
}

/// The headline numbers: request latency percentiles and throughput
/// over a fixed train of single-placement requests through the same
/// `Service::execute` path the server's writer thread runs.
fn report_percentiles() {
    const REQUESTS: usize = 1_000;
    let mut service = Service::new(region_config()).expect("service boots");
    let (nodes, _) = service.engine.node_counts();
    let line = ApiRequest::Place(PlaceRequest::new(4, 16_384)).to_json_line();

    let mut latencies_us = Vec::with_capacity(REQUESTS);
    let train_started = Instant::now();
    for _ in 0..REQUESTS {
        let started = Instant::now();
        let request = ApiRequest::parse_line(&line, false).expect("canonical line");
        let response = service.execute(&request);
        black_box(response.to_json_line());
        latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
    }
    let total = train_started.elapsed().as_secs_f64();

    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    println!(
        "serve_hot_path: {nodes}-node region, {REQUESTS} placements: \
         p50 = {:.1} us, p99 = {:.1} us, {:.0} placements/sec",
        pct(0.50),
        pct(0.99),
        REQUESTS as f64 / total
    );
}

fn hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_hot_path");
    g.sample_size(10);

    let mut engine = region_engine();
    let spec = gp_spec();
    g.bench_function("place_release", |b| {
        b.iter(|| {
            match engine.place(black_box(&spec)) {
                PlaceOutcome::Placed { vm, .. } => {
                    engine.release(vm);
                }
                other => {
                    black_box(other);
                }
            };
        })
    });

    let view = region_engine();
    g.bench_function("dry_run_plan", |b| {
        b.iter(|| {
            let mut fork = view.fork();
            black_box(fork.place(black_box(&spec)))
        })
    });

    g.bench_function("snapshot_fork", |b| b.iter(|| black_box(view.fork())));

    let line = ApiRequest::Place(PlaceRequest::new(4, 16_384).with_count(8)).to_json_line();
    g.bench_function("codec", |b| {
        b.iter(|| {
            let request = ApiRequest::parse_line(black_box(&line), false).expect("valid line");
            black_box(request.to_json_line())
        })
    });

    g.finish();
}

criterion_group!(benches, hot_path);

fn main() {
    report_percentiles();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
