//! Spatial-sharding scaling: one observed day of a replicated
//! multi-region estate, sequential versus the partitioned event loop at
//! 1/2/4/8 shard workers. The `shard_threads_1` point isolates the
//! partition + merge overhead (same code path, no concurrency); the
//! spread from `sequential` to `shard_threads_4` is the headline
//! speedup the README performance table reports.
//!
//! Default scale is 2 (two full regions) so the bench fits CI. Override
//! with a comma-separated `SAPSIM_SHARD_BENCH_SCALES` (e.g. `10,50`) to
//! reproduce the README table — scale 50 runs a ~50-region estate per
//! iteration, so budget minutes, not seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapsim_core::{SimConfig, SimDriver};
use std::hint::black_box;

fn scale_points() -> Vec<f64> {
    match std::env::var("SAPSIM_SHARD_BENCH_SCALES") {
        Ok(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("SAPSIM_SHARD_BENCH_SCALES must be comma-separated numbers")
            })
            .collect(),
        Err(_) => vec![2.0],
    }
}

fn one_day(scale: f64, shard_threads: usize) -> SimConfig {
    SimConfig::builder()
        .scale(scale)
        .days(1)
        .seed(1)
        .warmup_days(0)
        .shard_threads(shard_threads)
        .build()
        .expect("valid bench config")
}

fn shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_region_scaling");
    g.sample_size(10);
    for &scale in &scale_points() {
        g.bench_function(
            BenchmarkId::new(format!("scale_{scale}"), "sequential"),
            |b| {
                b.iter(|| black_box(SimDriver::new(one_day(scale, 0)).expect("valid").run()))
            },
        );
        for workers in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("scale_{scale}"), format!("shard_threads_{workers}")),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        black_box(SimDriver::new(one_day(scale, workers)).expect("valid").run())
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
