//! One benchmark per paper figure/table: the cost of regenerating each
//! artifact from a recorded run. The simulation itself is built once,
//! outside the measurement loops (see `benches/simulator.rs` for the cost
//! of producing it).

use criterion::{criterion_group, criterion_main, Criterion};
use sapsim_analysis::cdf::{utilization_cdf, VmResource};
use sapsim_analysis::classify::{table1_by_vcpu, table2_by_ram};
use sapsim_analysis::contention::contention_aggregate;
use sapsim_analysis::heatmap::{build_heatmap, HeatmapQuantity, HeatmapScope};
use sapsim_analysis::lifetime::lifetime_per_flavor;
use sapsim_analysis::ready_time::top_ready_nodes;
use sapsim_analysis::storage::storage_distribution;
use sapsim_analysis::tables::{render_table3, render_table4, render_table5};
use sapsim_bench::bench_run;
use sapsim_telemetry::MetricId;
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let run = bench_run();
    let dc = run.cloud.topology().dcs()[0].id;
    let bb = run.cloud.topology().bbs()[0].id;

    let mut g = c.benchmark_group("figures");
    g.bench_function("fig05_cpu_heatmap_dc", |b| {
        b.iter(|| {
            build_heatmap(
                black_box(&run),
                HeatmapScope::NodesOfDc(dc),
                HeatmapQuantity::FreePercentOf(MetricId::HostCpuUtilPct),
                "fig5",
                |_| 1.0,
            )
        })
    });
    g.bench_function("fig06_cpu_heatmap_bbs", |b| {
        b.iter(|| {
            build_heatmap(
                black_box(&run),
                HeatmapScope::BbsOfDc(dc),
                HeatmapQuantity::FreePercentOf(MetricId::HostCpuUtilPct),
                "fig6",
                |_| 1.0,
            )
        })
    });
    g.bench_function("fig07_cpu_heatmap_one_bb", |b| {
        b.iter(|| {
            build_heatmap(
                black_box(&run),
                HeatmapScope::NodesOfBb(bb),
                HeatmapQuantity::FreePercentOf(MetricId::HostCpuUtilPct),
                "fig7",
                |_| 1.0,
            )
        })
    });
    g.bench_function("fig08_top10_ready_time", |b| {
        b.iter(|| top_ready_nodes(black_box(&run), 10))
    });
    g.bench_function("fig09_contention_aggregate", |b| {
        b.iter(|| contention_aggregate(black_box(&run)))
    });
    g.bench_function("fig10_memory_heatmap", |b| {
        b.iter(|| {
            build_heatmap(
                black_box(&run),
                HeatmapScope::NodesOfDc(dc),
                HeatmapQuantity::FreePercentOf(MetricId::HostMemUsagePct),
                "fig10",
                |_| 1.0,
            )
        })
    });
    g.bench_function("fig11_12_network_heatmaps", |b| {
        b.iter(|| {
            for metric in [MetricId::HostNetTxKbps, MetricId::HostNetRxKbps] {
                black_box(build_heatmap(
                    &run,
                    HeatmapScope::NodesOfDc(dc),
                    HeatmapQuantity::FreeFractionOf(metric),
                    "fig11/12",
                    |_| 200_000_000.0,
                ));
            }
        })
    });
    g.bench_function("fig13_storage_distribution", |b| {
        b.iter(|| storage_distribution(black_box(&run)))
    });
    g.bench_function("fig14_utilization_cdfs", |b| {
        b.iter(|| {
            (
                utilization_cdf(black_box(&run), VmResource::Cpu),
                utilization_cdf(black_box(&run), VmResource::Memory),
            )
        })
    });
    g.bench_function("fig15_lifetime_per_flavor", |b| {
        b.iter(|| lifetime_per_flavor(black_box(&run), 30))
    });
    g.bench_function("table1_vcpu_classification", |b| {
        b.iter(|| table1_by_vcpu(black_box(&run)))
    });
    g.bench_function("table2_ram_classification", |b| {
        b.iter(|| table2_by_ram(black_box(&run)))
    });
    g.bench_function("table3_render", |b| b.iter(render_table3));
    g.bench_function("table4_render", |b| b.iter(render_table4));
    g.bench_function("table5_render", |b| b.iter(render_table5));
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
