//! Whole-simulator benchmarks: the cost of producing one observed day at
//! increasing fleet scales — the number a user planning a full-region
//! 30-day reproduction cares about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sapsim_core::{SimConfig, SimDriver};
use std::hint::black_box;

fn one_day_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for scale in [0.02f64, 0.05, 0.10] {
        g.bench_with_input(
            BenchmarkId::new("one_day", format!("scale_{scale}")),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    let cfg = SimConfig::builder()
                        .scale(scale)
                        .days(1)
                        .seed(1)
                        .warmup_days(0)
                        .build()
                        .expect("valid bench config");
                    black_box(SimDriver::new(cfg).expect("valid").run())
                })
            },
        );
    }
    g.finish();
}

/// The scrape hot path, reported in VM-samples per second. The scrape
/// dominates full runs (every placed VM draws a demand sample every 300
/// simulated seconds), so this is the number the dense-store and parallel
/// fan-out work moves. `threads_1` pins the scrape to one worker —
/// identical to a build without the `parallel` feature — while `threads_0`
/// uses one worker per available CPU (it only differs when the bench is
/// compiled with `--features parallel`).
fn scrape_hot_path(c: &mut Criterion) {
    let base = SimConfig::builder()
        .scale(0.05)
        .days(1)
        .seed(7)
        .warmup_days(0)
        .build()
        .expect("valid bench config");
    // Probe run: count the per-VM samples one run draws so criterion can
    // report throughput in VM-samples/sec rather than runs/sec.
    let probe = SimDriver::new(base).expect("valid").run();
    let vm_samples: u64 = probe.vm_stats.iter().map(|v| v.cpu_ratio.count).sum();
    let mut g = c.benchmark_group("scrape_hot_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(vm_samples));
    for threads in [1usize, 0] {
        g.bench_with_input(
            BenchmarkId::new("vm_samples", format!("threads_{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = base;
                    cfg.threads = threads;
                    black_box(SimDriver::new(cfg).expect("valid").run())
                })
            },
        );
    }
    g.finish();
}

/// One observed day of a replicated multi-region estate (`--scale` above
/// 1): the cost a capacity planner pays per region added. Kept to a
/// single scale point because each iteration runs a full ~90k-VM day.
fn multi_region_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("one_day/scale_2_multi_region", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder()
                .scale(2.0)
                .days(1)
                .seed(1)
                .warmup_days(0)
                .build()
                .expect("valid bench config");
            black_box(SimDriver::new(cfg).expect("valid").run())
        })
    });
    g.finish();
}

fn event_engine(c: &mut Criterion) {
    use sapsim_sim::{SimDuration, SimTime, Simulation};
    let mut g = c.benchmark_group("engine");
    g.bench_function("schedule_and_drain_100k", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new();
            for i in 0..100_000u32 {
                sim.schedule_at(SimTime::from_millis((i as u64 * 7919) % 1_000_000), i);
            }
            let mut n = 0u32;
            while let Some(e) = sim.next_event() {
                n = n.wrapping_add(e.payload);
            }
            black_box(n)
        })
    });
    g.bench_function("self_rescheduling_ticker_1m_events", |b| {
        b.iter(|| {
            let mut sim: Simulation<()> = Simulation::new();
            sim.schedule_at(SimTime::ZERO, ());
            let horizon = SimTime::from_secs(1_000_000);
            let mut n = 0u64;
            while let Some(_e) = sim.next_event_until(horizon) {
                n += 1;
                sim.schedule_after(SimDuration::from_secs(1), ());
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, one_day_runs, scrape_hot_path, multi_region_day, event_engine);
criterion_main!(benches);
