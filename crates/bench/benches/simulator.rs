//! Whole-simulator benchmarks: the cost of producing one observed day at
//! increasing fleet scales — the number a user planning a full-region
//! 30-day reproduction cares about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapsim_core::{SimConfig, SimDriver};
use std::hint::black_box;

fn one_day_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for scale in [0.02f64, 0.05, 0.10] {
        g.bench_with_input(
            BenchmarkId::new("one_day", format!("scale_{scale}")),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    let cfg = SimConfig {
                        scale,
                        days: 1,
                        seed: 1,
                        warmup_days: 0,
                        ..SimConfig::default()
                    };
                    black_box(SimDriver::new(cfg).expect("valid").run())
                })
            },
        );
    }
    g.finish();
}

fn event_engine(c: &mut Criterion) {
    use sapsim_sim::{SimDuration, SimTime, Simulation};
    let mut g = c.benchmark_group("engine");
    g.bench_function("schedule_and_drain_100k", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new();
            for i in 0..100_000u32 {
                sim.schedule_at(SimTime::from_millis((i as u64 * 7919) % 1_000_000), i);
            }
            let mut n = 0u32;
            while let Some(e) = sim.next_event() {
                n = n.wrapping_add(e.payload);
            }
            black_box(n)
        })
    });
    g.bench_function("self_rescheduling_ticker_1m_events", |b| {
        b.iter(|| {
            let mut sim: Simulation<()> = Simulation::new();
            sim.schedule_at(SimTime::ZERO, ());
            let horizon = SimTime::from_secs(1_000_000);
            let mut n = 0u64;
            while let Some(_e) = sim.next_event_until(horizon) {
                n += 1;
                sim.schedule_after(SimDuration::from_secs(1), ());
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, one_day_runs, event_engine);
criterion_main!(benches);
