//! Telemetry substrate benchmarks: recording throughput and the
//! aggregation primitives behind the analyses, plus dataset export/import.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::Rng;
use sapsim_bench::bench_run;
use sapsim_sim::{SimRng, SimTime};
use sapsim_telemetry::{summary, DailyRollup, EntityRef, MetricId, TsdbStore};
use sapsim_trace::{TraceReader, TraceWriter};
use std::hint::black_box;
use std::io::BufReader;

fn recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsdb");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("record_raw_100k", |b| {
        b.iter(|| {
            let mut db = TsdbStore::new(30);
            for i in 0..N {
                db.record(
                    MetricId::HostCpuUtilPct,
                    EntityRef::Node((i % 256) as u32),
                    SimTime::from_secs((i / 256) * 300),
                    i as f64,
                );
            }
            black_box(db.raw_sample_count())
        })
    });
    g.bench_function("record_rolled_100k", |b| {
        b.iter(|| {
            let mut db = TsdbStore::new(30);
            for i in 0..N {
                db.record_rolled(
                    MetricId::HostCpuUtilPct,
                    EntityRef::Node((i % 256) as u32),
                    SimTime::from_secs((i / 256) * 300),
                    i as f64,
                );
            }
            black_box(db.rolled_series_count())
        })
    });
    g.bench_function("rollup_push_1m", |b| {
        b.iter(|| {
            let mut r = DailyRollup::new(30);
            for i in 0..1_000_000u64 {
                r.push(SimTime::from_secs(i % (30 * 86_400)), i as f64);
            }
            black_box(r.overall_mean())
        })
    });
    g.finish();
}

fn aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary");
    let mut rng = SimRng::seed_from(1);
    let values: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..100.0)).collect();
    g.bench_function("quantile_p95_100k", |b| {
        b.iter(|| summary::quantile(black_box(&values), 0.95))
    });
    g.bench_function("empirical_cdf_100k", |b| {
        b.iter(|| summary::empirical_cdf(black_box(&values)))
    });
    g.finish();
}

fn dataset_io(c: &mut Criterion) {
    let run = bench_run();
    let mut csv = Vec::new();
    TraceWriter::plain()
        .write_store(&run.store, &mut csv)
        .expect("write");
    let mut g = c.benchmark_group("dataset");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(csv.len() as u64));
    g.bench_function("export_csv", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(csv.len());
            TraceWriter::anonymized(1)
                .write_store(black_box(&run.store), &mut out)
                .expect("write");
            black_box(out.len())
        })
    });
    g.bench_function("import_csv", |b| {
        b.iter(|| {
            let (store, _) = TraceReader::new()
                .read_into_store(&mut BufReader::new(black_box(&csv[..])), 3)
                .expect("read");
            black_box(store.raw_sample_count())
        })
    });
    g.finish();
}

criterion_group!(benches, recording, aggregation, dataset_io);
criterion_main!(benches);
