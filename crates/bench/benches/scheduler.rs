//! Scheduler micro-benchmarks: the filter/weigher pipeline, the
//! bin-packing baselines, and the DRS planner — the hot paths of a
//! production placement service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use sapsim_core::{Cloud, PlacementGranularity};
use sapsim_scheduler::{
    pack_all, BinPacker, HostLoad, HostView, PackingStrategy, PlacementPolicy, PlacementRequest,
    PolicyKind, RankOptions, Ranking, Rebalancer, VmLoad,
};
use sapsim_sim::{SimDuration, SimRng, SimTime};
use sapsim_topology::{
    paper_region_custom, AzId, BbId, BbPurpose, NodeId, PresetScale, ResourceKind, Resources,
    TopologyBuilder,
};
use sapsim_workload::{Archetype, UsageModel, VmId, VmSpec, WorkloadClass};
use std::hint::black_box;

fn host_views(n: usize, seed: u64) -> Vec<HostView> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let cap = Resources::with_memory_gib(192, 768, 6144);
            let used_frac: f64 = rng.gen_range(0.0..0.95);
            HostView {
                bb: BbId::from_raw(i as u32),
                node: None,
                purpose: BbPurpose::GeneralPurpose,
                az: AzId::from_raw((i % 2) as u32),
                capacity: cap,
                allocated: cap.scale(used_frac),
                enabled: true,
                contention_pct: rng.gen_range(0.0..30.0),
                mean_remaining_lifetime_days: rng.gen_range(0.0..500.0),
            }
        })
        .collect()
}

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let request = PlacementRequest::new(
        1,
        Resources::with_memory_gib(4, 32, 100),
        BbPurpose::GeneralPurpose,
    );
    for n in [64usize, 256, 1024, 4096] {
        let views = host_views(n, 7);
        g.bench_with_input(BenchmarkId::new("rank_spread", n), &views, |b, views| {
            let mut policy = PlacementPolicy::new(PolicyKind::Spread);
            b.iter(|| policy.rank(black_box(&request), black_box(views)).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("rank_contention_aware", n),
            &views,
            |b, views| {
                let mut policy = PlacementPolicy::new(PolicyKind::ContentionAware);
                b.iter(|| policy.rank(black_box(&request), black_box(views)).unwrap())
            },
        );
    }
    g.finish();
}

/// A full-scale region (the paper's 1,823 nodes) with two small VMs on
/// every node, so host views carry realistic allocation, lifetime, and
/// bucket structure. Returns the cloud plus one extra reserved slot for
/// the churn benchmark's transient VM.
fn populated_cloud() -> (Cloud, Vec<VmSpec>) {
    let (topo, _dc_a, _dc_b) = paper_region_custom(PresetScale::Full, 7, &TopologyBuilder::new());
    let nodes: Vec<NodeId> = topo.nodes().iter().map(|n| n.id).collect();
    let mut cloud = Cloud::new(topo);
    let mut specs = Vec::with_capacity(nodes.len() * 2);
    for i in 0..nodes.len() {
        for j in 0..2u64 {
            let id = (i as u64) * 2 + j;
            specs.push(bench_spec(id));
        }
    }
    cloud.reserve_vm_slots(specs.len() + 1);
    for (i, s) in specs.iter().enumerate() {
        cloud.place(i, s, nodes[i / 2], SimRng::seed_from(i as u64));
    }
    (cloud, specs)
}

fn bench_spec(id: u64) -> VmSpec {
    let mut rng = SimRng::seed_from(id);
    VmSpec {
        id: VmId(id),
        flavor_index: 0,
        flavor_name: "bench".into(),
        resources: Resources::with_memory_gib(4, 32, 50),
        archetype: Archetype::GenericService,
        class: WorkloadClass::GeneralPurpose,
        usage: UsageModel::draw(Archetype::GenericService, &mut rng),
        arrival: SimTime::ZERO,
        age_at_arrival: SimDuration::ZERO,
        lifetime: SimDuration::from_days(10 + id % 200),
        resize: None,
    }
}

/// The incremental placement hot path at production scale: a cold
/// from-scratch view rebuild plus full rank (what every decision paid
/// before the cache) against the warm cached path (dirty-row refresh,
/// indexed candidate pruning, top-k partial ranking) — both with and
/// without per-iteration churn dirtying a row.
fn placement_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement_hot_path");
    let request = PlacementRequest::new(
        u64::MAX,
        Resources::with_memory_gib(4, 32, 50),
        BbPurpose::GeneralPurpose,
    );
    let (mut cloud, specs) = populated_cloud();
    let now = SimTime::from_days(1);
    let churn_node = cloud.topology().bbs()[0].nodes[0];
    let churn_spec = bench_spec(specs.len() as u64);
    for granularity in [
        PlacementGranularity::Node,
        PlacementGranularity::BuildingBlock,
    ] {
        let label = match granularity {
            PlacementGranularity::Node => "node",
            PlacementGranularity::BuildingBlock => "bb",
        };
        g.bench_function(format!("cold_full_rank_{label}"), |b| {
            let mut policy = PlacementPolicy::new(PolicyKind::PaperDefault);
            b.iter(|| {
                let views = cloud.host_views(granularity, now);
                policy
                    .rank(black_box(&request), black_box(&views))
                    .unwrap()
                    .best()
            })
        });
        g.bench_function(format!("warm_cached_rank_{label}"), |b| {
            let mut policy = PlacementPolicy::new(PolicyKind::PaperDefault);
            let mut out = Ranking::default();
            cloud.host_views_cached(granularity, now); // prime the cache
            b.iter(|| {
                let (views, index) = cloud.host_views_cached(granularity, now);
                policy
                    .rank_into(
                        black_box(&request),
                        views,
                        RankOptions {
                            index: Some(index),
                            top_k: 5,
                            count_stats: false,
                        },
                        &mut out,
                    )
                    .unwrap();
                black_box(out.best())
            })
        });
        g.bench_function(format!("warm_cached_rank_after_churn_{label}"), |b| {
            let mut policy = PlacementPolicy::new(PolicyKind::PaperDefault);
            let mut out = Ranking::default();
            cloud.host_views_cached(granularity, now); // prime the cache
            let mut seed = 0u64;
            b.iter(|| {
                // Dirty exactly one row, as a steady-state churn
                // placement would, then rank through the refresh.
                cloud.place(
                    specs.len(),
                    &churn_spec,
                    churn_node,
                    SimRng::seed_from(seed),
                );
                seed += 1;
                cloud.remove(churn_spec.id);
                let (views, index) = cloud.host_views_cached(granularity, now);
                policy
                    .rank_into(
                        black_box(&request),
                        views,
                        RankOptions {
                            index: Some(index),
                            top_k: 5,
                            count_stats: false,
                        },
                        &mut out,
                    )
                    .unwrap();
                black_box(out.best())
            })
        });
    }
    g.finish();
}

fn packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    let mut rng = SimRng::seed_from(3);
    let items: Vec<Resources> = (0..2000)
        .map(|_| {
            Resources::with_memory_gib(
                rng.gen_range(1..16),
                rng.gen_range(4..256),
                rng.gen_range(10..500),
            )
        })
        .collect();
    let bin = Resources::with_memory_gib(192, 768, 6144);
    for strategy in [
        PackingStrategy::FirstFit,
        PackingStrategy::BestFit,
        PackingStrategy::FirstFitDecreasing,
    ] {
        g.bench_function(format!("pack_all_2000_{strategy:?}"), |b| {
            b.iter(|| pack_all(black_box(&items), bin, strategy, ResourceKind::Memory))
        });
    }
    let views = host_views(1024, 9);
    let packer = BinPacker::new(PackingStrategy::BestFit, ResourceKind::Memory)
        .expect("BestFit is an online strategy");
    let req = Resources::with_memory_gib(4, 32, 100);
    g.bench_function("binpacker_choose_1024_hosts", |b| {
        b.iter(|| packer.choose(black_box(&req), black_box(&views)))
    });
    g.finish();
}

fn drs(c: &mut Criterion) {
    let mut g = c.benchmark_group("drs");
    let mut rng = SimRng::seed_from(5);
    // A 64-node cluster with ~40 VMs per node, imbalanced.
    let loads: Vec<HostLoad<NodeId>> = (0..64)
        .map(|i| HostLoad {
            id: NodeId::from_raw(i as u32),
            cpu_capacity: 48.0,
            mem_capacity_mib: 768.0 * 1024.0,
            vms: (0..40)
                .map(|j| VmLoad {
                    vm_uid: (i * 100 + j) as u64,
                    cpu_demand: rng.gen_range(0.0..2.0) * if i < 8 { 3.0 } else { 1.0 },
                    mem_used_mib: rng.gen_range(1024.0..16384.0),
                    movable: j % 10 != 0,
                })
                .collect(),
        })
        .collect();
    g.bench_function("plan_64_nodes_2560_vms", |b| {
        let planner = Rebalancer::default();
        b.iter(|| planner.plan(black_box(&loads)))
    });
    g.finish();
}

criterion_group!(benches, pipeline, placement_hot_path, packing, drs);
criterion_main!(benches);
