//! Scheduler micro-benchmarks: the filter/weigher pipeline, the
//! bin-packing baselines, and the DRS planner — the hot paths of a
//! production placement service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use sapsim_scheduler::{
    pack_all, BinPacker, HostLoad, HostView, PackingStrategy, PlacementPolicy, PlacementRequest,
    PolicyKind, Rebalancer, VmLoad,
};
use sapsim_sim::SimRng;
use sapsim_topology::{AzId, BbId, BbPurpose, NodeId, ResourceKind, Resources};
use std::hint::black_box;

fn host_views(n: usize, seed: u64) -> Vec<HostView> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let cap = Resources::with_memory_gib(192, 768, 6144);
            let used_frac: f64 = rng.gen_range(0.0..0.95);
            HostView {
                bb: BbId::from_raw(i as u32),
                node: None,
                purpose: BbPurpose::GeneralPurpose,
                az: AzId::from_raw((i % 2) as u32),
                capacity: cap,
                allocated: cap.scale(used_frac),
                enabled: true,
                contention_pct: rng.gen_range(0.0..30.0),
                mean_remaining_lifetime_days: rng.gen_range(0.0..500.0),
            }
        })
        .collect()
}

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let request = PlacementRequest::new(
        1,
        Resources::with_memory_gib(4, 32, 100),
        BbPurpose::GeneralPurpose,
    );
    for n in [64usize, 256, 1024, 4096] {
        let views = host_views(n, 7);
        g.bench_with_input(BenchmarkId::new("rank_spread", n), &views, |b, views| {
            let mut policy = PlacementPolicy::new(PolicyKind::Spread);
            b.iter(|| policy.rank(black_box(&request), black_box(views)).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("rank_contention_aware", n),
            &views,
            |b, views| {
                let mut policy = PlacementPolicy::new(PolicyKind::ContentionAware);
                b.iter(|| policy.rank(black_box(&request), black_box(views)).unwrap())
            },
        );
    }
    g.finish();
}

fn packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    let mut rng = SimRng::seed_from(3);
    let items: Vec<Resources> = (0..2000)
        .map(|_| {
            Resources::with_memory_gib(
                rng.gen_range(1..16),
                rng.gen_range(4..256),
                rng.gen_range(10..500),
            )
        })
        .collect();
    let bin = Resources::with_memory_gib(192, 768, 6144);
    for strategy in [
        PackingStrategy::FirstFit,
        PackingStrategy::BestFit,
        PackingStrategy::FirstFitDecreasing,
    ] {
        g.bench_function(format!("pack_all_2000_{strategy:?}"), |b| {
            b.iter(|| pack_all(black_box(&items), bin, strategy, ResourceKind::Memory))
        });
    }
    let views = host_views(1024, 9);
    let packer = BinPacker::new(PackingStrategy::BestFit, ResourceKind::Memory)
        .expect("BestFit is an online strategy");
    let req = Resources::with_memory_gib(4, 32, 100);
    g.bench_function("binpacker_choose_1024_hosts", |b| {
        b.iter(|| packer.choose(black_box(&req), black_box(&views)))
    });
    g.finish();
}

fn drs(c: &mut Criterion) {
    let mut g = c.benchmark_group("drs");
    let mut rng = SimRng::seed_from(5);
    // A 64-node cluster with ~40 VMs per node, imbalanced.
    let loads: Vec<HostLoad<NodeId>> = (0..64)
        .map(|i| HostLoad {
            id: NodeId::from_raw(i as u32),
            cpu_capacity: 48.0,
            mem_capacity_mib: 768.0 * 1024.0,
            vms: (0..40)
                .map(|j| VmLoad {
                    vm_uid: (i * 100 + j) as u64,
                    cpu_demand: rng.gen_range(0.0..2.0) * if i < 8 { 3.0 } else { 1.0 },
                    mem_used_mib: rng.gen_range(1024.0..16384.0),
                    movable: j % 10 != 0,
                })
                .collect(),
        })
        .collect();
    g.bench_function("plan_64_nodes_2560_vms", |b| {
        let planner = Rebalancer::default();
        b.iter(|| planner.plan(black_box(&loads)))
    });
    g.finish();
}

criterion_group!(benches, pipeline, packing, drs);
criterion_main!(benches);
