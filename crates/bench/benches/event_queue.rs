//! Event-queue backend benchmarks: the hierarchical timing wheel against
//! the binary-heap oracle on the access patterns a simulation run
//! actually produces — bulk schedule/drain, cancel-heavy feeds (VM
//! departures cancelled by failures), and steady-state timer churn (the
//! scrape/DRS tickers rescheduling themselves forever).
//!
//! Throughput is reported in queue operations per second so the two
//! backends are directly comparable across group lines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sapsim_sim::{EventQueue, QueueBackend, SimRng, SimTime};
use std::hint::black_box;

const BACKENDS: [(&str, QueueBackend); 2] = [
    ("wheel", QueueBackend::TimingWheel),
    ("heap", QueueBackend::BinaryHeap),
];

/// Pre-draw the pseudo-random schedule times once so the measured loop is
/// pure queue work. A simulated week in milliseconds keeps the wheel's
/// upper levels exercised.
fn times(n: usize, seed: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| SimTime::from_millis(rng.gen_range(0..7 * 86_400_000)))
        .collect()
}

/// Push 1M scattered events, then drain them all in time order.
fn push_pop(c: &mut Criterion) {
    const N: usize = 1_000_000;
    let schedule = times(N, 11);
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * N as u64));
    for (name, backend) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("push_pop_1m", name),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
                    for (i, &t) in schedule.iter().enumerate() {
                        q.push(t, i as u32);
                    }
                    let mut acc = 0u32;
                    while let Some(ev) = q.pop() {
                        acc = acc.wrapping_add(ev.payload);
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

/// Push 1M events and cancel three quarters of them before draining —
/// the shape a fault-heavy run produces when failures cancel departures.
fn cancel_heavy(c: &mut Criterion) {
    const N: usize = 1_000_000;
    let schedule = times(N, 13);
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * N as u64));
    for (name, backend) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("cancel_75pct_1m", name),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
                    let handles: Vec<_> = schedule
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| q.push(t, i as u32))
                        .collect();
                    for (i, &h) in handles.iter().enumerate() {
                        if i % 4 != 0 {
                            q.cancel(h);
                        }
                    }
                    let mut acc = 0u32;
                    while let Some(ev) = q.pop() {
                        acc = acc.wrapping_add(ev.payload);
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

/// Steady-state churn: 10k outstanding timers; each pop immediately
/// reschedules a short way into the future, 1M operations total. This is
/// the self-rescheduling ticker pattern (scrapes, DRS rounds) that
/// dominates long-horizon runs.
fn timer_churn(c: &mut Criterion) {
    const LIVE: usize = 10_000;
    const OPS: usize = 1_000_000;
    let offsets: Vec<u64> = {
        let mut rng = SimRng::seed_from(17);
        (0..OPS).map(|_| rng.gen_range(1..600_000)).collect()
    };
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * OPS as u64));
    for (name, backend) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("timer_churn_1m", name),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
                    for i in 0..LIVE {
                        q.push(SimTime::from_millis(offsets[i]), i as u32);
                    }
                    let mut acc = 0u32;
                    for &off in &offsets[LIVE..] {
                        let ev = q.pop().expect("queue stays populated");
                        acc = acc.wrapping_add(ev.payload);
                        q.push(
                            ev.time + sapsim_sim::SimDuration::from_millis(off),
                            ev.payload,
                        );
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, push_pop, cancel_heavy, timer_churn);
criterion_main!(benches);
