//! Ablation benchmarks (A1–A3): wall-clock cost of the scheduling-policy,
//! overcommit, and rebalancing comparisons at a fixed micro scale. Each
//! iteration is a complete one-day simulation, so these quantify how
//! expensive "one ablation cell" is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapsim_core::{PlacementGranularity, SimConfig, SimDriver};
use sapsim_scheduler::PolicyKind;
use std::hint::black_box;

fn micro(policy: PolicyKind, granularity: PlacementGranularity, overcommit: f64) -> SimConfig {
    SimConfig::builder()
        .scale(0.02)
        .days(1)
        .seed(81)
        .warmup_days(0)
        .policy(policy)
        .granularity(granularity)
        .gp_cpu_overcommit(overcommit)
        .build()
        .expect("valid micro config")
}

fn a1_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_policies");
    g.sample_size(10);
    for policy in PolicyKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("bb_granularity", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let cfg = micro(policy, PlacementGranularity::BuildingBlock, 4.0);
                    black_box(SimDriver::new(cfg).expect("valid").run().stats)
                })
            },
        );
    }
    g.bench_function("node_granularity/paper-default", |b| {
        b.iter(|| {
            let cfg = micro(
                PolicyKind::PaperDefault,
                PlacementGranularity::Node,
                4.0,
            );
            black_box(SimDriver::new(cfg).expect("valid").run().stats)
        })
    });
    g.finish();
}

fn a2_overcommit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_overcommit");
    g.sample_size(10);
    for ratio in [1.0f64, 4.0, 8.0] {
        g.bench_with_input(
            BenchmarkId::new("sweep", format!("{ratio:.0}x")),
            &ratio,
            |b, &ratio| {
                b.iter(|| {
                    let cfg = micro(
                        PolicyKind::PaperDefault,
                        PlacementGranularity::BuildingBlock,
                        ratio,
                    );
                    black_box(SimDriver::new(cfg).expect("valid").run().stats)
                })
            },
        );
    }
    g.finish();
}

fn a3_rebalancers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rebalance");
    g.sample_size(10);
    for (drs, cross, label) in [
        (false, false, "none"),
        (true, false, "drs_only"),
        (true, true, "drs_plus_cross_bb"),
    ] {
        g.bench_function(format!("rebalance/{label}"), |b| {
            b.iter(|| {
                let mut cfg = micro(
                    PolicyKind::PaperDefault,
                    PlacementGranularity::BuildingBlock,
                    4.0,
                );
                cfg.drs_enabled = drs;
                cfg.cross_bb_enabled = cross;
                black_box(SimDriver::new(cfg).expect("valid").run().stats)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, a1_policies, a2_overcommit, a3_rebalancers);
criterion_main!(benches);
