//! Shared fixtures for the sapsim benchmark suite.

use sapsim_core::{RunResult, SimConfig, SimDriver};

/// The standard benchmark run: 5 % of the region, 3 observed days, no
/// warm-up (benchmarks measure analysis/scheduling cost, not calibration).
pub fn bench_run() -> RunResult {
    let cfg = SimConfig::builder()
        .scale(0.05)
        .days(3)
        .seed(42)
        .warmup_days(0)
        .build()
        .expect("valid bench config");
    SimDriver::new(cfg).expect("valid").run()
}
